//! Deterministic offline replay: run a rule pack over a recorded sample
//! stream and get back the exact transition transcript the live engine
//! would have produced.
//!
//! The stream is JSONL, one record per line:
//!
//! ```json
//! {"v":1,"kind":"sample","t_ms":0,"type":"counter","name":"pipeline.seeds_attacked","total":30}
//! {"v":1,"kind":"sample","t_ms":0,"type":"gauge","name":"reliability.pfd_mean","value":0.01}
//! {"v":1,"kind":"sample","t_ms":0,"type":"hist","name":"attack.fuzz.naturalness","value":-3.2}
//! {"v":1,"kind":"clear","t_ms":500,"name":"reliability.pfd_mean"}
//! {"v":1,"kind":"tick","t_ms":1000}
//! ```
//!
//! `sample` records mutate the accumulating metric state (`hist` adds
//! one observation to a [`FixedHistogram`]); `clear` withdraws a name
//! from every namespace; `tick` is an evaluation point — the engine
//! sees one [`MetricsFrame`] per tick, stamped with the tick's clock.
//! Because both the state mutations and the evaluation points are
//! explicit in the recording, a replay is bit-deterministic: no wall
//! clock, no thread timing, no ambient state.

use crate::engine::{AlertEngine, AlertStatus, Transition};
use crate::frame::{HistStats, MetricsFrame};
use crate::rule::Rule;
use opad_telemetry::{parse_json, FixedHistogram, JsonValue};
use opad_tsdb::{Sample, SeriesKind, TsdbStore};
use std::collections::HashMap;

/// Version of the sample-stream line layout.
pub const SAMPLE_STREAM_VERSION: u32 = 1;

/// What a replay produced.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Every lifecycle transition, in evaluation order.
    pub transitions: Vec<Transition>,
    /// Final per-rule statuses after the last tick.
    pub statuses: Vec<AlertStatus>,
    /// Number of `tick` evaluation points replayed.
    pub ticks: usize,
    /// Malformed lines, as `(1-based line, message)`; replay continues
    /// past them.
    pub errors: Vec<(usize, String)>,
}

/// Replays `rules` over a sample-stream text. Deterministic: the same
/// text and rules always yield the same outcome.
pub fn replay(rules: Vec<Rule>, stream: &str) -> ReplayOutcome {
    let mut engine = AlertEngine::new(rules);
    let mut counters: HashMap<String, u64> = HashMap::new();
    let mut gauges: HashMap<String, f64> = HashMap::new();
    let mut hists: HashMap<String, FixedHistogram> = HashMap::new();
    // Every counter/gauge sample also lands in a history store keyed by
    // the recorded `t_ms`, so window conditions (`rate(c, 10s) >`)
    // replay through exactly the machinery the live sampler feeds —
    // same rings, same window cuts, bit-identical answers.
    let history = TsdbStore::new();
    let mut transitions = Vec::new();
    let mut errors = Vec::new();
    let mut ticks = 0usize;
    for (i, raw) in stream.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let record = match parse_json(line) {
            Ok(v) => v,
            Err(e) => {
                errors.push((line_no, format!("not JSON: {e}")));
                continue;
            }
        };
        match apply_record(&record, &mut counters, &mut gauges, &mut hists, &history) {
            Ok(Some(t_ms)) => {
                ticks += 1;
                let frame = build_frame(t_ms, &counters, &gauges, &hists);
                transitions.extend(engine.eval_with_history(&frame, Some(&history)));
            }
            Ok(None) => {}
            Err(message) => errors.push((line_no, message)),
        }
    }
    ReplayOutcome {
        transitions,
        statuses: engine.statuses(),
        ticks,
        errors,
    }
}

/// Evaluates `rules` once against a single pre-built frame (the
/// envelope-replay path: a finished run's telemetry summary is one
/// final frame, so every threshold rule can be checked against it even
/// though there is no time axis to replay).
pub fn eval_once(rules: Vec<Rule>, frame: &MetricsFrame) -> ReplayOutcome {
    let mut engine = AlertEngine::new(rules);
    let transitions = engine.eval(frame);
    ReplayOutcome {
        transitions,
        statuses: engine.statuses(),
        ticks: 1,
        errors: Vec::new(),
    }
}

/// Applies one record to the accumulating state. Returns `Ok(Some(t))`
/// for a tick at clock `t`, `Ok(None)` for state mutations.
fn apply_record(
    record: &JsonValue,
    counters: &mut HashMap<String, u64>,
    gauges: &mut HashMap<String, f64>,
    hists: &mut HashMap<String, FixedHistogram>,
    history: &TsdbStore,
) -> Result<Option<f64>, String> {
    let version = record
        .get("v")
        .and_then(JsonValue::as_u64)
        .ok_or("missing \"v\"")?;
    if version > SAMPLE_STREAM_VERSION as u64 {
        return Err(format!(
            "stream version {version} is newer than supported {SAMPLE_STREAM_VERSION}"
        ));
    }
    let kind = record
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or("missing \"kind\"")?;
    let t_ms = record
        .get("t_ms")
        .and_then(JsonValue::as_f64)
        .ok_or("missing \"t_ms\"")?;
    match kind {
        "tick" => Ok(Some(t_ms)),
        "clear" => {
            let name = record
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or("clear needs \"name\"")?;
            counters.remove(name);
            gauges.remove(name);
            hists.remove(name);
            history.clear_series(name);
            Ok(None)
        }
        "sample" => {
            let name = record
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or("sample needs \"name\"")?
                .to_string();
            match record.get("type").and_then(JsonValue::as_str) {
                Some("counter") => {
                    let total = record
                        .get("total")
                        .and_then(JsonValue::as_u64)
                        .ok_or("counter sample needs integer \"total\"")?;
                    history.push(
                        &name,
                        SeriesKind::Counter,
                        Sample {
                            t_ms,
                            value: total as f64,
                        },
                    );
                    counters.insert(name, total);
                }
                Some("gauge") => {
                    let value = record
                        .get("value")
                        .and_then(JsonValue::as_f64)
                        .ok_or("gauge sample needs \"value\"")?;
                    history.push(&name, SeriesKind::Gauge, Sample { t_ms, value });
                    gauges.insert(name, value);
                }
                Some("hist") => {
                    let value = record
                        .get("value")
                        .and_then(JsonValue::as_f64)
                        .ok_or("hist sample needs \"value\"")?;
                    hists.entry(name).or_default().record(value);
                }
                other => return Err(format!("unknown sample type {other:?}")),
            }
            Ok(None)
        }
        other => Err(format!("unknown record kind {other:?}")),
    }
}

fn build_frame(
    t_ms: f64,
    counters: &HashMap<String, u64>,
    gauges: &HashMap<String, f64>,
    hists: &HashMap<String, FixedHistogram>,
) -> MetricsFrame {
    let mut frame = MetricsFrame::new(t_ms);
    // Deterministic frame construction: maps iterate in arbitrary
    // order, so insert name-sorted. (Rule evaluation reads by name, but
    // byte-stable frames make outcomes comparable in tests.)
    let mut names: Vec<&String> = counters.keys().collect();
    names.sort();
    for name in names {
        frame.set_counter(name, counters[name]);
    }
    let mut names: Vec<&String> = gauges.keys().collect();
    names.sort();
    for name in names {
        frame.set_gauge(name, gauges[name]);
    }
    let mut names: Vec<&String> = hists.keys().collect();
    names.sort();
    for name in names {
        let h = &hists[name];
        if h.count() > 0 {
            frame.set_hist(
                name,
                HistStats {
                    count: h.count(),
                    p50: h.quantile(0.5).unwrap_or(0.0),
                    p90: h.quantile(0.9).unwrap_or(0.0),
                    p99: h.quantile(0.99).unwrap_or(0.0),
                },
            );
        }
    }
    frame
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AlertState;
    use crate::rule::parse_rules;

    fn rules(text: &str) -> Vec<Rule> {
        let (rules, errors) = parse_rules(text);
        assert!(errors.is_empty(), "{errors:?}");
        rules
    }

    const STREAM: &str = r#"
{"v":1,"kind":"sample","t_ms":0,"type":"gauge","name":"reliability.pfd_mean","value":0.01}
{"v":1,"kind":"tick","t_ms":0}
{"v":1,"kind":"sample","t_ms":100,"type":"gauge","name":"reliability.pfd_mean","value":0.21}
{"v":1,"kind":"tick","t_ms":100}
{"v":1,"kind":"tick","t_ms":700}
{"v":1,"kind":"sample","t_ms":900,"type":"gauge","name":"reliability.pfd_mean","value":0.02}
{"v":1,"kind":"tick","t_ms":900}
"#;

    #[test]
    fn replay_reproduces_the_full_lifecycle_transcript() {
        let out = replay(
            rules(
                "alert breach severity=critical for=500ms when gauge reliability.pfd_mean > 0.05",
            ),
            STREAM,
        );
        assert_eq!(out.errors, Vec::new());
        assert_eq!(out.ticks, 4);
        let edges: Vec<(AlertState, AlertState)> =
            out.transitions.iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(
            edges,
            vec![
                (AlertState::Inactive, AlertState::Pending),
                (AlertState::Pending, AlertState::Firing),
                (AlertState::Firing, AlertState::Resolved),
            ]
        );
        assert_eq!(out.statuses[0].state, AlertState::Resolved);
    }

    #[test]
    fn replay_is_deterministic() {
        let pack = "alert breach for=500ms when gauge reliability.pfd_mean > 0.05\nalert stall for=50ms when counter_stall pipeline.seeds_attacked";
        let a = replay(rules(pack), STREAM);
        let b = replay(rules(pack), STREAM);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.statuses, b.statuses);
    }

    #[test]
    fn hist_samples_accumulate_and_clear_withdraws() {
        let stream = r#"
{"v":1,"kind":"sample","t_ms":0,"type":"hist","name":"h","value":1.0}
{"v":1,"kind":"sample","t_ms":0,"type":"hist","name":"h","value":100.0}
{"v":1,"kind":"tick","t_ms":0}
{"v":1,"kind":"clear","t_ms":10,"name":"h"}
{"v":1,"kind":"tick","t_ms":10}
"#;
        let out = replay(rules("alert slow when hist h p99 >= 50"), stream);
        assert_eq!(out.errors, Vec::new());
        let edges: Vec<(AlertState, AlertState)> =
            out.transitions.iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(
            edges,
            vec![
                (AlertState::Inactive, AlertState::Pending),
                (AlertState::Pending, AlertState::Firing),
                (AlertState::Firing, AlertState::Resolved),
            ]
        );
    }

    #[test]
    fn window_rules_replay_deterministically() {
        // A counter that ramps 40/s for two seconds, then flatlines.
        // The stall rule needs the full window to go quiet before the
        // rate drops under threshold, then `for=` holds it in pending.
        let mut stream = String::new();
        for i in 0..=20u32 {
            let t = i as f64 * 250.0;
            let total = 10 * i.min(8);
            stream.push_str(&format!(
                "{{\"v\":1,\"kind\":\"sample\",\"t_ms\":{t},\"type\":\"counter\",\"name\":\"pipeline.seeds_attacked\",\"total\":{total}}}\n"
            ));
            stream.push_str(&format!("{{\"v\":1,\"kind\":\"tick\",\"t_ms\":{t}}}\n"));
        }
        let pack = "alert seed_rate_stall severity=warning for=500ms when rate(pipeline.seeds_attacked, 2s) < 1";
        let a = replay(rules(pack), &stream);
        assert_eq!(a.errors, Vec::new());
        let edges: Vec<(AlertState, AlertState, f64)> = a
            .transitions
            .iter()
            .map(|t| (t.from, t.to, t.t_ms))
            .collect();
        assert_eq!(
            edges,
            vec![
                (AlertState::Inactive, AlertState::Pending, 4_000.0),
                (AlertState::Pending, AlertState::Firing, 4_500.0),
            ]
        );
        assert_eq!(a.statuses[0].state, AlertState::Firing);
        let b = replay(rules(pack), &stream);
        assert_eq!(
            format!("{:?}", a.transitions),
            format!("{:?}", b.transitions)
        );
        assert_eq!(format!("{:?}", a.statuses), format!("{:?}", b.statuses));
    }

    #[test]
    fn malformed_lines_are_reported_and_skipped() {
        let stream = r#"
{"v":1,"kind":"tick","t_ms":0}
garbage
{"v":1,"kind":"sample","t_ms":1,"type":"nope","name":"x"}
{"v":9,"kind":"tick","t_ms":2}
{"v":1,"kind":"tick"}
{"v":1,"kind":"tick","t_ms":5}
"#;
        let out = replay(rules("alert a when gauge g > 1"), stream);
        assert_eq!(out.ticks, 2);
        let lines: Vec<usize> = out.errors.iter().map(|(l, _)| *l).collect();
        assert_eq!(lines, vec![3, 4, 5, 6]);
    }

    #[test]
    fn eval_once_serves_the_envelope_path() {
        let mut frame = MetricsFrame::new(0.0);
        frame.set_gauge("reliability.pfd_mean", 0.2);
        let out = eval_once(
            rules("alert breach when gauge reliability.pfd_mean > 0.05\nalert quiet when gauge reliability.pfd_mean > 0.5"),
            &frame,
        );
        assert_eq!(out.statuses[0].state, AlertState::Firing);
        assert_eq!(out.statuses[1].state, AlertState::Inactive);
    }
}
