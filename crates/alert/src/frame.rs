//! [`MetricsFrame`]: one timestamped, immutable view of the metric space
//! that the engine evaluates rules against.
//!
//! A frame is deliberately the *lowest common denominator* of the three
//! places rule evaluation happens: a [`LiveSnapshot`] polled off a
//! running recorder, a replayed sample stream (`obsctl alerts replay`),
//! and a finished run's envelope telemetry summary. Histograms are
//! reduced to [`HistStats`] (count + the three quantiles the grammar can
//! threshold) precisely because the envelope form only carries
//! summaries — any rule that evaluates live is therefore guaranteed to
//! evaluate identically offline.

use opad_telemetry::LiveSnapshot;

/// The histogram facts a rule may reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistStats {
    /// Recorded sample count.
    pub count: u64,
    /// Median estimate.
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

/// A point-in-time view of every metric, keyed by workspace dotted name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsFrame {
    /// The frame's evaluation clock, in milliseconds. All lifecycle
    /// arithmetic (`for=` hysteresis, stall budgets) runs on this value,
    /// so replays over recorded timestamps are exactly as deterministic
    /// as the recording.
    pub t_ms: f64,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    hists: Vec<(String, HistStats)>,
}

impl MetricsFrame {
    /// An empty frame at time `t_ms`.
    pub fn new(t_ms: f64) -> MetricsFrame {
        MetricsFrame {
            t_ms,
            ..MetricsFrame::default()
        }
    }

    /// Builds a frame from a live recorder snapshot. The frame clock is
    /// the snapshot's `wall_ms` (milliseconds since the recorder was
    /// created), so one recorder's frames share a monotone clock.
    pub fn from_snapshot(snap: &LiveSnapshot) -> MetricsFrame {
        let mut frame = MetricsFrame::new(snap.wall_ms);
        for (name, total) in &snap.counters {
            frame.set_counter(name, *total);
        }
        for (name, value) in &snap.gauges {
            frame.set_gauge(name, *value);
        }
        for (name, h) in &snap.histograms {
            if h.count() > 0 {
                frame.set_hist(
                    name,
                    HistStats {
                        count: h.count(),
                        p50: h.quantile(0.5).unwrap_or(0.0),
                        p90: h.quantile(0.9).unwrap_or(0.0),
                        p99: h.quantile(0.99).unwrap_or(0.0),
                    },
                );
            }
        }
        frame
    }

    /// Sets (or replaces) a counter total.
    pub fn set_counter(&mut self, name: &str, total: u64) {
        upsert(&mut self.counters, name, total);
    }

    /// Sets (or replaces) a gauge value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        upsert(&mut self.gauges, name, value);
    }

    /// Sets (or replaces) a histogram summary.
    pub fn set_hist(&mut self, name: &str, stats: HistStats) {
        upsert(&mut self.hists, name, stats);
    }

    /// Removes a metric from every namespace — the "gauge published,
    /// then withdrawn" case a threshold rule must treat as *no breach*.
    pub fn remove(&mut self, name: &str) {
        self.counters.retain(|(n, _)| n != name);
        self.gauges.retain(|(n, _)| n != name);
        self.hists.retain(|(n, _)| n != name);
    }

    /// Current counter total, `None` if absent from this frame.
    pub fn counter(&self, name: &str) -> Option<u64> {
        lookup(&self.counters, name)
    }

    /// Current gauge value, `None` if absent from this frame.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        lookup(&self.gauges, name)
    }

    /// Current histogram summary, `None` if absent from this frame.
    pub fn hist(&self, name: &str) -> Option<HistStats> {
        lookup(&self.hists, name)
    }
}

fn upsert<T: Copy>(list: &mut Vec<(String, T)>, name: &str, value: T) {
    match list.iter_mut().find(|(n, _)| n == name) {
        Some((_, v)) => *v = value,
        None => list.push((name.to_string(), value)),
    }
}

fn lookup<T: Copy>(list: &[(String, T)], name: &str) -> Option<T> {
    list.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opad_telemetry::{LiveRecorder, Recorder};

    #[test]
    fn upsert_lookup_and_remove_round_trip() {
        let mut f = MetricsFrame::new(10.0);
        f.set_counter("c", 3);
        f.set_counter("c", 5);
        f.set_gauge("g", 1.5);
        f.set_hist(
            "h",
            HistStats {
                count: 2,
                p50: 1.0,
                p90: 2.0,
                p99: 2.0,
            },
        );
        assert_eq!(f.counter("c"), Some(5));
        assert_eq!(f.gauge("g"), Some(1.5));
        assert_eq!(f.hist("h").map(|h| h.count), Some(2));
        assert_eq!(f.counter("missing"), None);
        f.remove("g");
        assert_eq!(f.gauge("g"), None);
    }

    #[test]
    fn snapshot_frames_carry_counters_gauges_and_quantiles() {
        let rec = LiveRecorder::new();
        rec.counter_add("pipeline.seeds_attacked", 30);
        rec.gauge_set("reliability.pfd_mean", 0.01);
        for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
            rec.histogram_record("attack.pgd.iters_to_success", v);
        }
        let frame = MetricsFrame::from_snapshot(&rec.snapshot());
        assert!(frame.t_ms >= 0.0);
        assert_eq!(frame.counter("pipeline.seeds_attacked"), Some(30));
        assert_eq!(frame.gauge("reliability.pfd_mean"), Some(0.01));
        let h = frame.hist("attack.pgd.iters_to_success").expect("recorded");
        assert_eq!(h.count, 5);
        assert!(h.p50 <= h.p90 && h.p90 <= h.p99);
    }
}
