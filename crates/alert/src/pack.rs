//! The default rule pack `opad-core` installs at the top of every
//! testing round: the four "is this run still trustworthy?" checks the
//! paper's operational-reliability story needs, parameterised on the
//! run's own claims (its pfd bound and its training-OP naturalness
//! floor).

use crate::rule::{parse_rules, Rule};

/// Alert name: the estimated pfd has risen above the claimed bound.
pub const PFD_BOUND_BREACH: &str = "pfd_bound_breach";
/// Alert name: fuzzed seeds score well below the training operational
/// profile (the attack is drifting off-distribution, so accepted AEs
/// stop being *operational* adversarial examples).
pub const NATURALNESS_DRIFT: &str = "naturalness_drift";
/// Alert name: the fuzz fan-out has stopped accepting proposals.
pub const FUZZ_DEAD: &str = "fuzz_dead";
/// Alert name: no seed has entered the attack stage recently.
pub const SEEDS_STALLED: &str = "seeds_stalled";
/// Alert name: the pipeline has sat in one non-idle phase too long.
pub const STUCK_PHASE: &str = "stuck_phase";

/// Renders the default pack as rule-grammar text. This is the exact
/// format `obsctl alerts check` parses, so the shipped
/// `rules/default.alerts` file and the pack `opad-core` installs stay
/// one artifact expressed two ways.
pub fn default_pack_text(pfd_bound: f64, naturalness_floor: f64) -> String {
    format!(
        "\
# Default opad alert pack.
# pfd_bound is the run's claimed reliability target; naturalness_floor
# is a low quantile of log-density over the training operational profile.

# The reliability claim itself: estimated pfd above the claimed bound,
# sustained for half a second (one MC batch of noise is not a breach).
alert {PFD_BOUND_BREACH} severity=critical for=500ms when gauge reliability.pfd_mean > {pfd_bound}

# Fuzzed candidates scoring far below the training OP: the attack is
# wandering off-distribution and \"operational\" AEs no longer are.
alert {NATURALNESS_DRIFT} severity=warning for=500ms when hist attack.fuzz.naturalness p50 < {naturalness_floor}

# Liveness: the fuzz fan-out stopped accepting, or seeds stopped
# flowing into the attack stage at all.
alert {FUZZ_DEAD} severity=warning for=10s when counter_stall attack.fuzz.accepted
alert {SEEDS_STALLED} severity=warning for=10s when counter_stall pipeline.seeds_attacked

# Watchdog: parked in one non-idle phase beyond any sane budget.
alert {STUCK_PHASE} severity=critical when phase_stuck 30s
"
    )
}

/// The default pack, parsed. `pfd_bound` should be the run's claimed
/// reliability target (its `target_pfd`); `naturalness_floor` a low
/// quantile of training-OP log-density (see `opad-core`'s floor
/// estimate).
pub fn default_rules(pfd_bound: f64, naturalness_floor: f64) -> Vec<Rule> {
    let (rules, errors) = parse_rules(&default_pack_text(pfd_bound, naturalness_floor));
    debug_assert!(errors.is_empty(), "default pack must parse: {errors:?}");
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::check_vocabulary;

    #[test]
    fn default_pack_parses_and_names_only_known_metrics() {
        let rules = default_rules(0.05, -25.0);
        assert_eq!(rules.len(), 5);
        let names: Vec<&str> = rules.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                PFD_BOUND_BREACH,
                NATURALNESS_DRIFT,
                FUZZ_DEAD,
                SEEDS_STALLED,
                STUCK_PHASE
            ]
        );
        assert_eq!(check_vocabulary(&rules), Vec::<String>::new());
    }

    #[test]
    fn pack_text_round_trips_through_rule_display() {
        let rules = default_rules(0.05, -25.0);
        for rule in &rules {
            let rendered = rule.to_string();
            let (back, errors) = parse_rules(&rendered);
            assert!(errors.is_empty(), "{rendered}: {errors:?}");
            assert_eq!(back.len(), 1);
            assert_eq!(&back[0], rule, "display must render parseable grammar");
        }
    }
}
