//! # opad-alert
//!
//! Alerting & watchdog plane over the live metrics the rest of the
//! workspace already publishes: a std-only rule engine that evaluates
//! declarative rules against [`LiveRecorder`](opad_telemetry::LiveRecorder)
//! snapshots on a background thread, drives a Prometheus-style alert
//! lifecycle (inactive → pending → firing → resolved, with `for=`
//! hysteresis), and appends every transition to an `alerts.jsonl` log
//! through the existing sink machinery.
//!
//! The paper's pitch is *runtime* reliability assessment — a claimed pfd
//! bound is only useful if someone notices when the live estimate
//! crosses it. This crate is that someone:
//!
//! * **Rules** ([`rule`]) — a one-line grammar:
//!   `alert <name> [severity=…] [for=<dur>] when <condition>`, with
//!   gauge/counter thresholds, counter-stall liveness, histogram
//!   quantile thresholds, a `phase_stuck` pipeline watchdog, and
//!   windowed conditions over the [`opad_tsdb`] history plane
//!   (`rate(pipeline.seeds_attacked, 10s) < 0.5`).
//! * **Frames** ([`frame`]) — the lowest-common-denominator view rules
//!   evaluate against, buildable identically from a live snapshot, a
//!   recorded sample stream, or a finished run's envelope. Whatever
//!   fires live fires in replay.
//! * **Engine** ([`engine`]) — pure state machine; all time comes from
//!   the frame clock, never the wall clock, so replays are
//!   deterministic.
//! * **Center & watch** ([`center`], [`watch`]) — the shared live face:
//!   a poll thread snapshots the recorder every interval and feeds the
//!   engine; `opad-serve` reads `/alerts` from the same center.
//! * **Replay** ([`replay`]) — `obsctl alerts replay` runs the same
//!   engine over a recorded JSONL sample stream and reproduces the
//!   exact transition transcript.
//! * **Pack** ([`pack`]) — the default rules `opad-core` installs:
//!   pfd-bound breach, naturalness drift off the training OP, dead fuzz
//!   fan-out, stalled seeds, stuck phase.
//!
//! Like the telemetry recorder, there is a process-global [`AlertCenter`]
//! slot ([`install`]/[`current`]/[`uninstall`]) so the pipeline can
//! contribute rules without threading a handle through every layer.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use opad_alert::{AlertCenter, AlertState, MetricsFrame};
//! use opad_alert::rule::parse_rules;
//!
//! let (rules, errors) =
//!     parse_rules("alert breach severity=critical when gauge reliability.pfd_mean > 0.05");
//! assert!(errors.is_empty());
//! let center = AlertCenter::new(rules);
//!
//! let mut frame = MetricsFrame::new(0.0);
//! frame.set_gauge("reliability.pfd_mean", 0.21);
//! center.eval_frame(&frame);
//! assert!(center.any_firing());
//!
//! let mut frame = MetricsFrame::new(100.0);
//! frame.set_gauge("reliability.pfd_mean", 0.01);
//! center.eval_frame(&frame);
//! assert_eq!(center.statuses()[0].state, AlertState::Resolved);
//! ```

#![warn(missing_docs)]

pub mod center;
pub mod engine;
pub mod frame;
pub mod log;
pub mod pack;
pub mod replay;
pub mod rule;
pub mod watch;

pub use center::AlertCenter;
pub use engine::{AlertEngine, AlertState, AlertStatus, Transition};
pub use frame::{HistStats, MetricsFrame};
pub use log::{transition_from_json, transition_to_json, ALERT_LOG_VERSION};
pub use pack::{default_pack_text, default_rules};
pub use replay::{eval_once, replay, ReplayOutcome, SAMPLE_STREAM_VERSION};
pub use rule::{check_vocabulary, parse_rules, Condition, ParseError, Rule, Severity};
pub use watch::{AlertWatch, WatchHandle};

use std::sync::{Arc, RwLock};

static CENTER: RwLock<Option<Arc<AlertCenter>>> = RwLock::new(None);

/// Installs `center` as the process-global alert center, replacing any
/// previous one. `opad-core` contributes its default rule pack through
/// this slot; nothing alert-related happens for processes that never
/// install one.
pub fn install(center: Arc<AlertCenter>) {
    *CENTER.write().expect("alert lock poisoned") = Some(center);
}

/// Removes the global alert center, returning it so callers can take a
/// final status read.
pub fn uninstall() -> Option<Arc<AlertCenter>> {
    CENTER.write().expect("alert lock poisoned").take()
}

/// The currently installed alert center, if any.
pub fn current() -> Option<Arc<AlertCenter>> {
    CENTER.read().expect("alert lock poisoned").clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The global center is process state; tests touching it serialize.
    static GLOBAL_GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn global_center_installs_and_uninstalls() {
        let _g = GLOBAL_GUARD.lock().unwrap();
        uninstall();
        assert!(current().is_none());
        let (rules, _) = parse_rules("alert a when gauge g > 1");
        install(Arc::new(AlertCenter::new(rules)));
        let center = current().expect("installed");
        assert!(center.has_rule("a"));
        let back = uninstall().expect("returned");
        assert!(back.has_rule("a"));
        assert!(current().is_none());
    }
}
