//! The evaluation engine: rules × frames → lifecycle transitions.
//!
//! Lifecycle (Prometheus-flavoured, plus an explicit resolved state):
//!
//! ```text
//!             cond true                    held for `for=`
//! inactive ──────────────► pending ──────────────────────► firing
//!    ▲                        │ cond false                    │ cond false
//!    │                        ▼                               ▼
//!    └───────────────────── (back)                        resolved
//!                                                            │ cond true
//!                                                            ▼
//!                                                         pending
//! ```
//!
//! * A condition that becomes true moves the rule to **pending** and
//!   stamps the time; once it has held continuously for the rule's
//!   `for=` duration (inclusive: *exactly* at the boundary counts) the
//!   rule **fires**. `for=0` still passes through pending — every alert
//!   transcript shows the same four-state sequence, which is what the
//!   replay fixtures assert on.
//! * A condition that goes false ends the episode: pending falls back
//!   to **inactive** (the hysteresis did its job — no alert happened),
//!   firing moves to **resolved**. A later recurrence starts a new
//!   episode from pending.
//!
//! Evaluation is pull-based and pure: [`AlertEngine::eval`] looks only
//! at the [`MetricsFrame`] argument and its own per-rule state, so the
//! same frame sequence always yields the same transition sequence —
//! replayability is a construction property, not a test hope.

use crate::frame::MetricsFrame;
use crate::rule::{Condition, Rule, Severity};
use opad_telemetry::phase;
use opad_tsdb::TsdbStore;
use std::fmt;

/// Where a rule currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Condition false; nothing happening.
    Inactive,
    /// Condition true, `for=` budget not yet exhausted.
    Pending,
    /// Condition has held long enough; the alert is live.
    Firing,
    /// Previously firing; condition has gone false again.
    Resolved,
}

impl AlertState {
    /// The lowercase wire/label form.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }

    /// Parses the lowercase form back.
    pub fn parse(s: &str) -> Option<AlertState> {
        match s {
            "inactive" => Some(AlertState::Inactive),
            "pending" => Some(AlertState::Pending),
            "firing" => Some(AlertState::Firing),
            "resolved" => Some(AlertState::Resolved),
            _ => None,
        }
    }
}

impl fmt::Display for AlertState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lifecycle edge, ready for the `alerts.jsonl` log.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Frame clock at which the edge happened.
    pub t_ms: f64,
    /// Alert (rule) name.
    pub alert: String,
    /// The rule's severity.
    pub severity: Severity,
    /// State before.
    pub from: AlertState,
    /// State after.
    pub to: AlertState,
    /// The observed metric value that drove the evaluation, when the
    /// condition had one (absent metrics evaluate without a value).
    pub value: Option<f64>,
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>10.1} ms  {:<24} {} -> {}",
            self.t_ms, self.alert, self.from, self.to
        )?;
        if let Some(v) = self.value {
            write!(f, "  (value {v})")?;
        }
        Ok(())
    }
}

/// A rule's current status, as served on `/alerts`.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertStatus {
    /// Alert (rule) name.
    pub name: String,
    /// Severity from the rule.
    pub severity: Severity,
    /// Current lifecycle state.
    pub state: AlertState,
    /// Frame clock at which the current state was entered.
    pub since_ms: f64,
    /// Last observed metric value, if the condition had one.
    pub value: Option<f64>,
    /// The condition, rendered in rule-grammar form.
    pub condition: String,
}

/// Per-rule mutable evaluation state.
#[derive(Debug, Clone)]
struct RuleRuntime {
    state: AlertState,
    state_since_ms: f64,
    /// When the current continuous true-streak began.
    pending_since_ms: Option<f64>,
    /// Last observed value (for statuses and transition records).
    last_value: Option<f64>,
    /// `CounterStall`: the last total seen, to detect "stopped moving".
    last_total: Option<u64>,
    /// `PhaseStuck`: the last phase gauge value and since when.
    phase_value: Option<f64>,
    phase_since_ms: Option<f64>,
}

impl RuleRuntime {
    fn new() -> RuleRuntime {
        RuleRuntime {
            state: AlertState::Inactive,
            state_since_ms: 0.0,
            pending_since_ms: None,
            last_value: None,
            last_total: None,
            phase_value: None,
            phase_since_ms: None,
        }
    }
}

/// The rule engine: owns the rules and their runtime state; feed it
/// frames, get back transitions.
#[derive(Debug, Default)]
pub struct AlertEngine {
    rules: Vec<Rule>,
    runtime: Vec<RuleRuntime>,
}

impl AlertEngine {
    /// An engine over `rules`, all starting inactive.
    pub fn new(rules: Vec<Rule>) -> AlertEngine {
        let runtime = rules.iter().map(|_| RuleRuntime::new()).collect();
        AlertEngine { rules, runtime }
    }

    /// The rules, in evaluation order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Whether a rule with this name is installed.
    pub fn has_rule(&self, name: &str) -> bool {
        self.rules.iter().any(|r| r.name == name)
    }

    /// Adds every rule whose name is not already installed (new rules
    /// start inactive). Returns how many were added — calling this each
    /// round with the same pack is an idempotent no-op after the first.
    pub fn ensure_rules(&mut self, rules: &[Rule]) -> usize {
        let mut added = 0;
        for rule in rules {
            if !self.has_rule(&rule.name) {
                self.rules.push(rule.clone());
                self.runtime.push(RuleRuntime::new());
                added += 1;
            }
        }
        added
    }

    /// Whether any rule is currently firing.
    pub fn any_firing(&self) -> bool {
        self.runtime.iter().any(|r| r.state == AlertState::Firing)
    }

    /// Every rule's current status, in rule order.
    pub fn statuses(&self) -> Vec<AlertStatus> {
        self.rules
            .iter()
            .zip(&self.runtime)
            .map(|(rule, rt)| AlertStatus {
                name: rule.name.clone(),
                severity: rule.severity,
                state: rt.state,
                since_ms: rt.state_since_ms,
                value: rt.last_value,
                condition: rule.condition.to_string(),
            })
            .collect()
    }

    /// Evaluates every rule against `frame`, returning the transitions
    /// this frame caused (empty when nothing changed state). Window
    /// conditions evaluate as false — use
    /// [`eval_with_history`](AlertEngine::eval_with_history) to give
    /// them a history store.
    pub fn eval(&mut self, frame: &MetricsFrame) -> Vec<Transition> {
        self.eval_with_history(frame, None)
    }

    /// Evaluates every rule against `frame`, with window conditions
    /// answered from `history` at the frame's clock (`t_ms`). Pure in
    /// the same sense as [`eval`](AlertEngine::eval): all time comes
    /// from the frame and the samples, never the wall clock, so a
    /// replayed store reproduces the live transcript bit for bit.
    pub fn eval_with_history(
        &mut self,
        frame: &MetricsFrame,
        history: Option<&TsdbStore>,
    ) -> Vec<Transition> {
        let mut transitions = Vec::new();
        for (rule, rt) in self.rules.iter().zip(self.runtime.iter_mut()) {
            let (cond, value) = eval_condition(&rule.condition, frame, rt, history);
            rt.last_value = value;
            let next = next_state(rt.state, cond, rule.for_ms, frame.t_ms, rt);
            for (from, to) in next {
                transitions.push(Transition {
                    t_ms: frame.t_ms,
                    alert: rule.name.clone(),
                    severity: rule.severity,
                    from,
                    to,
                    value,
                });
                rt.state = to;
                rt.state_since_ms = frame.t_ms;
            }
        }
        transitions
    }
}

/// The pure lifecycle step: which edges (if any) the rule takes this
/// frame. At most two — `inactive → pending → firing` in one frame when
/// the `for=` budget is already exhausted (notably `for=0`).
fn next_state(
    state: AlertState,
    cond: bool,
    for_ms: f64,
    t_ms: f64,
    rt: &mut RuleRuntime,
) -> Vec<(AlertState, AlertState)> {
    use AlertState::*;
    if cond {
        match state {
            Inactive | Resolved => {
                rt.pending_since_ms = Some(t_ms);
                if for_ms <= 0.0 {
                    vec![(state, Pending), (Pending, Firing)]
                } else {
                    vec![(state, Pending)]
                }
            }
            Pending => {
                let since = rt.pending_since_ms.unwrap_or(t_ms);
                if t_ms - since >= for_ms {
                    vec![(Pending, Firing)]
                } else {
                    Vec::new()
                }
            }
            Firing => Vec::new(),
        }
    } else {
        rt.pending_since_ms = None;
        match state {
            Pending => vec![(Pending, Inactive)],
            Firing => vec![(Firing, Resolved)],
            Inactive | Resolved => Vec::new(),
        }
    }
}

/// Evaluates one condition against one frame. Returns the truth value
/// and the observed metric value (for transition records). Missing
/// metrics are false for threshold rules, and "no progress" for stall
/// rules — see each arm.
fn eval_condition(
    condition: &Condition,
    frame: &MetricsFrame,
    rt: &mut RuleRuntime,
    history: Option<&TsdbStore>,
) -> (bool, Option<f64>) {
    match condition {
        Condition::Window {
            expr,
            cmp,
            threshold,
        } => {
            // No attached history store, or a window that cannot answer
            // (unknown series, too few samples, zero span): false, like
            // every other absent-evidence case. The typed error is
            // deliberately not a breach — a rule that should fire on
            // silence wants counter_stall, not rate().
            let Some(store) = history else {
                return (false, None);
            };
            match store.eval_window(expr, frame.t_ms) {
                Ok(v) => (cmp.eval(v, *threshold), Some(v)),
                Err(_) => (false, None),
            }
        }
        Condition::GaugeThreshold {
            metric,
            cmp,
            threshold,
        } => match frame.gauge(metric) {
            Some(v) => (cmp.eval(v, *threshold), Some(v)),
            None => (false, None),
        },
        Condition::CounterThreshold {
            metric,
            cmp,
            threshold,
        } => match frame.counter(metric) {
            Some(total) => (cmp.eval(total as f64, *threshold), Some(total as f64)),
            None => (false, None),
        },
        Condition::CounterStall { metric } => {
            // "No progress" is true both for a counter that has never
            // appeared and for one whose total stopped moving; the first
            // appearance and every increment count as progress. The
            // rule's `for=` duration is the grace budget in both cases
            // (the lifecycle's pending clock starts at the first
            // no-progress evaluation), so the condition itself is simply
            // "no progress since the last evaluation".
            let cur = frame.counter(metric);
            let progressed = match (rt.last_total, cur) {
                (None, Some(_)) => true, // first appearance
                (Some(prev), Some(now)) => now != prev,
                (_, None) => false, // never appeared (or withdrew)
            };
            rt.last_total = cur.or(rt.last_total);
            (!progressed, cur.map(|c| c as f64))
        }
        Condition::HistQuantile {
            metric,
            q,
            cmp,
            threshold,
        } => match frame.hist(metric) {
            Some(h) if h.count > 0 => {
                let v = match q {
                    crate::rule::Quantile::P50 => h.p50,
                    crate::rule::Quantile::P90 => h.p90,
                    crate::rule::Quantile::P99 => h.p99,
                };
                (cmp.eval(v, *threshold), Some(v))
            }
            _ => (false, None),
        },
        Condition::PhaseStuck { budget_ms } => {
            let Some(raw) = frame.gauge(phase::PHASE_GAUGE) else {
                // No pipeline has published yet: nothing to watch.
                rt.phase_value = None;
                rt.phase_since_ms = None;
                return (false, None);
            };
            // idle/done are parked states, not stuck ones. Unknown codes
            // (from_gauge rejects them) still count as stuck-able: a
            // corrupt phase gauge pinned at 7.3 is exactly the kind of
            // wedge the watchdog exists for.
            if matches!(phase::from_gauge(raw), Ok(phase::IDLE) | Ok(phase::DONE)) {
                rt.phase_value = None;
                rt.phase_since_ms = None;
                return (false, Some(raw));
            }
            if rt.phase_value != Some(raw) {
                rt.phase_value = Some(raw);
                rt.phase_since_ms = Some(frame.t_ms);
                return (false, Some(raw));
            }
            let since = rt.phase_since_ms.unwrap_or(frame.t_ms);
            (frame.t_ms - since >= *budget_ms, Some(raw))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::parse_rules;

    fn engine(text: &str) -> AlertEngine {
        let (rules, errors) = parse_rules(text);
        assert!(errors.is_empty(), "{errors:?}");
        AlertEngine::new(rules)
    }

    fn gauge_frame(t_ms: f64, name: &str, value: f64) -> MetricsFrame {
        let mut f = MetricsFrame::new(t_ms);
        f.set_gauge(name, value);
        f
    }

    fn edges(ts: &[Transition]) -> Vec<(AlertState, AlertState)> {
        ts.iter().map(|t| (t.from, t.to)).collect()
    }

    #[test]
    fn full_lifecycle_with_hysteresis() {
        use AlertState::*;
        let mut e = engine("alert breach severity=critical for=100ms when gauge g > 1");
        // Below threshold: nothing.
        assert!(e.eval(&gauge_frame(0.0, "g", 0.5)).is_empty());
        // Breach starts an episode.
        assert_eq!(
            edges(&e.eval(&gauge_frame(10.0, "g", 2.0))),
            vec![(Inactive, Pending)]
        );
        // Still inside the for-budget: pending holds, no edge.
        assert!(e.eval(&gauge_frame(60.0, "g", 2.0)).is_empty());
        // Budget exhausted: fires.
        assert_eq!(
            edges(&e.eval(&gauge_frame(120.0, "g", 2.0))),
            vec![(Pending, Firing)]
        );
        assert!(e.any_firing());
        // Recovery resolves.
        let ts = e.eval(&gauge_frame(200.0, "g", 0.5));
        assert_eq!(edges(&ts), vec![(Firing, Resolved)]);
        assert_eq!(ts[0].value, Some(0.5));
        assert!(!e.any_firing());
        // Recurrence starts a fresh episode from resolved.
        assert_eq!(
            edges(&e.eval(&gauge_frame(300.0, "g", 3.0))),
            vec![(Resolved, Pending)]
        );
    }

    #[test]
    fn pending_fires_exactly_at_the_for_boundary() {
        use AlertState::*;
        let mut e = engine("alert b for=100ms when gauge g > 1");
        e.eval(&gauge_frame(50.0, "g", 2.0));
        // 99.999… of the budget: still pending.
        assert!(e.eval(&gauge_frame(149.0, "g", 2.0)).is_empty());
        // Exactly at the boundary (t - since == for): fires. The
        // comparison is `>=`, so the boundary belongs to firing.
        assert_eq!(
            edges(&e.eval(&gauge_frame(150.0, "g", 2.0))),
            vec![(Pending, Firing)]
        );
    }

    #[test]
    fn for_zero_still_passes_through_pending() {
        use AlertState::*;
        let mut e = engine("alert b when gauge g > 1");
        assert_eq!(
            edges(&e.eval(&gauge_frame(5.0, "g", 2.0))),
            vec![(Inactive, Pending), (Pending, Firing)]
        );
    }

    #[test]
    fn pending_that_recovers_never_fires() {
        use AlertState::*;
        let mut e = engine("alert b for=100ms when gauge g > 1");
        e.eval(&gauge_frame(0.0, "g", 2.0));
        assert_eq!(
            edges(&e.eval(&gauge_frame(50.0, "g", 0.0))),
            vec![(Pending, Inactive)]
        );
        // A later breach restarts the budget from scratch: at 149 the
        // *new* episode is only 49ms old, so no firing.
        e.eval(&gauge_frame(100.0, "g", 2.0));
        assert!(e.eval(&gauge_frame(149.0, "g", 2.0)).is_empty());
    }

    #[test]
    fn withdrawn_gauge_is_not_a_breach() {
        use AlertState::*;
        let mut e = engine("alert b for=100ms when gauge g > 1");
        e.eval(&gauge_frame(0.0, "g", 2.0)); // pending
                                             // The gauge disappears from the next frame entirely.
        let ts = e.eval(&MetricsFrame::new(50.0));
        assert_eq!(edges(&ts), vec![(Pending, Inactive)]);
        assert_eq!(ts[0].value, None);
        // And while absent, nothing ever fires.
        assert!(e.eval(&MetricsFrame::new(500.0)).is_empty());
    }

    #[test]
    fn counter_stall_covers_never_appeared_and_stopped_moving() {
        use AlertState::*;
        // Absent from the start: the stall condition is true from the
        // first evaluation, so the for-budget runs from watch start.
        let mut e = engine("alert dead for=100ms when counter_stall c");
        assert_eq!(
            edges(&e.eval(&MetricsFrame::new(0.0))),
            vec![(Inactive, Pending)]
        );
        assert_eq!(
            edges(&e.eval(&MetricsFrame::new(100.0))),
            vec![(Pending, Firing)]
        );
        // First appearance is progress: resolves.
        let mut f = MetricsFrame::new(150.0);
        f.set_counter("c", 1);
        assert_eq!(edges(&e.eval(&f)), vec![(Firing, Resolved)]);
        // Unchanged total: a new stall episode begins…
        let mut f = MetricsFrame::new(200.0);
        f.set_counter("c", 1);
        assert_eq!(edges(&e.eval(&f)), vec![(Resolved, Pending)]);
        // …and an increment ends it before the budget runs out.
        let mut f = MetricsFrame::new(250.0);
        f.set_counter("c", 2);
        assert_eq!(edges(&e.eval(&f)), vec![(Pending, Inactive)]);
    }

    #[test]
    fn hist_quantile_thresholds_and_empty_histograms() {
        use AlertState::*;
        let mut e = engine("alert slow when hist h p99 >= 10");
        // No histogram at all: false.
        assert!(e.eval(&MetricsFrame::new(0.0)).is_empty());
        let mut f = MetricsFrame::new(10.0);
        f.set_hist(
            "h",
            crate::frame::HistStats {
                count: 100,
                p50: 2.0,
                p90: 6.0,
                p99: 12.0,
            },
        );
        let ts = e.eval(&f);
        assert_eq!(edges(&ts), vec![(Inactive, Pending), (Pending, Firing)]);
        assert_eq!(ts[0].value, Some(12.0));
    }

    #[test]
    fn phase_stuck_fires_on_a_wedged_working_phase_only() {
        use opad_telemetry::phase;
        use AlertState::*;
        let mut e = engine("alert stuck for=0ms when phase_stuck 100ms");
        let phase_frame = |t: f64, code: f64| gauge_frame(t, phase::PHASE_GAUGE, code);
        // idle forever is fine.
        assert!(e.eval(&phase_frame(0.0, phase::IDLE as f64)).is_empty());
        assert!(e.eval(&phase_frame(500.0, phase::IDLE as f64)).is_empty());
        // Entering fuzz starts the budget…
        assert!(e.eval(&phase_frame(600.0, phase::FUZZ as f64)).is_empty());
        // …phase changes reset it…
        assert!(e
            .eval(&phase_frame(650.0, phase::EVALUATE as f64))
            .is_empty());
        assert!(e.eval(&phase_frame(700.0, phase::FUZZ as f64)).is_empty());
        // …and only an *unchanged working* phase past the budget fires.
        let ts = e.eval(&phase_frame(800.0, phase::FUZZ as f64));
        assert_eq!(edges(&ts), vec![(Inactive, Pending), (Pending, Firing)]);
        assert_eq!(ts[0].value, Some(phase::FUZZ as f64));
        // done resolves the watchdog.
        assert_eq!(
            edges(&e.eval(&phase_frame(900.0, phase::DONE as f64))),
            vec![(Firing, Resolved)]
        );
    }

    #[test]
    fn phase_stuck_counts_unknown_codes_as_stuck_able() {
        use opad_telemetry::phase;
        use AlertState::*;
        let mut e = engine("alert stuck when phase_stuck 50ms");
        e.eval(&gauge_frame(0.0, phase::PHASE_GAUGE, 7.3));
        let ts = e.eval(&gauge_frame(60.0, phase::PHASE_GAUGE, 7.3));
        assert_eq!(edges(&ts), vec![(Inactive, Pending), (Pending, Firing)]);
    }

    #[test]
    fn window_condition_is_false_without_history_and_evaluates_with_it() {
        use opad_tsdb::{Sample, SeriesKind};
        use AlertState::*;
        let mut e = engine("alert stall for=0ms when rate(c, 2s) < 5");
        let store = TsdbStore::new();
        // A healthy ramp: 10/s.
        for i in 0..10u32 {
            store.push(
                "c",
                SeriesKind::Counter,
                Sample {
                    t_ms: i as f64 * 250.0,
                    value: (i as f64) * 2.5,
                },
            );
        }
        // Without history the condition is false even though the rule
        // would breach on an empty store.
        assert!(e.eval(&MetricsFrame::new(2_250.0)).is_empty());
        // With history and a healthy rate: still false.
        assert!(e
            .eval_with_history(&MetricsFrame::new(2_250.0), Some(&store))
            .is_empty());
        // The counter flatlines: rate over the trailing window decays
        // below the threshold and the alert fires.
        for i in 10..20u32 {
            store.push(
                "c",
                SeriesKind::Counter,
                Sample {
                    t_ms: i as f64 * 250.0,
                    value: 22.5,
                },
            );
        }
        let ts = e.eval_with_history(&MetricsFrame::new(4_750.0), Some(&store));
        assert_eq!(edges(&ts), vec![(Inactive, Pending), (Pending, Firing)]);
        assert_eq!(ts[0].value, Some(0.0));
    }

    #[test]
    fn window_rule_transitions_carry_the_observed_value() {
        use opad_tsdb::{Sample, SeriesKind};
        let mut e = engine("alert hot when avg_over_time(g, 1s) > 2");
        let store = TsdbStore::new();
        for (t, v) in [(0.0, 3.0), (500.0, 5.0), (1_000.0, 4.0)] {
            store.push("g", SeriesKind::Gauge, Sample { t_ms: t, value: v });
        }
        let ts = e.eval_with_history(&MetricsFrame::new(1_000.0), Some(&store));
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].value, Some(4.0), "mean of the trailing second");
    }

    #[test]
    fn ensure_rules_is_idempotent_and_preserves_state() {
        let (pack, _) = parse_rules("alert a when gauge g > 1\nalert b when gauge h > 1");
        let mut e = AlertEngine::new(Vec::new());
        assert_eq!(e.ensure_rules(&pack), 2);
        e.eval(&gauge_frame(0.0, "g", 2.0)); // `a` fires
        assert_eq!(e.ensure_rules(&pack), 0, "same pack adds nothing");
        assert!(e.any_firing(), "re-ensuring must not reset state");
        let statuses = e.statuses();
        assert_eq!(statuses.len(), 2);
        assert_eq!(statuses[0].state, AlertState::Firing);
        assert_eq!(statuses[1].state, AlertState::Inactive);
        assert_eq!(statuses[0].condition, "gauge g > 1");
    }

    #[test]
    fn statuses_track_since_and_value() {
        let mut e = engine("alert b for=100ms when gauge g > 1");
        e.eval(&gauge_frame(40.0, "g", 2.5));
        let s = &e.statuses()[0];
        assert_eq!(s.state, AlertState::Pending);
        assert_eq!(s.since_ms, 40.0);
        assert_eq!(s.value, Some(2.5));
    }
}
