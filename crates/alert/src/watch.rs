//! [`AlertWatch`]: the background evaluation thread — polls a
//! [`LiveRecorder`] snapshot every interval and feeds it to an
//! [`AlertCenter`].
//!
//! Polling (rather than hooking the recording path) is the whole
//! design: the hot path keeps its wait-free counters, and rule cost is
//! bounded by `rules × poll rate` regardless of event volume. A few
//! hundred milliseconds of detection latency is irrelevant for alerts
//! whose `for=` budgets are measured in seconds.

use crate::center::AlertCenter;
use opad_telemetry::LiveRecorder;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default poll interval.
const DEFAULT_INTERVAL: Duration = Duration::from_millis(250);

/// How finely the sleep is sliced so `stop` is honoured promptly even
/// with long intervals.
const STOP_POLL: Duration = Duration::from_millis(10);

/// A not-yet-started watch: a recorder to poll and a center to feed.
pub struct AlertWatch {
    recorder: Arc<LiveRecorder>,
    center: Arc<AlertCenter>,
    interval: Duration,
}

impl AlertWatch {
    /// Pairs `recorder` with `center` at the default poll interval.
    pub fn new(recorder: Arc<LiveRecorder>, center: Arc<AlertCenter>) -> AlertWatch {
        AlertWatch {
            recorder,
            center,
            interval: DEFAULT_INTERVAL,
        }
    }

    /// Overrides the poll interval.
    pub fn interval(mut self, interval: Duration) -> AlertWatch {
        self.interval = interval;
        self
    }

    /// Starts the background evaluation thread.
    pub fn spawn(self) -> WatchHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let loop_stop = stop.clone();
        let thread = std::thread::Builder::new()
            .name("opad-alert-watch".to_string())
            .spawn(move || {
                while !loop_stop.load(Ordering::Acquire) {
                    self.center.eval_snapshot(&self.recorder.snapshot());
                    let mut slept = Duration::ZERO;
                    while slept < self.interval && !loop_stop.load(Ordering::Acquire) {
                        let step = STOP_POLL.min(self.interval - slept);
                        std::thread::sleep(step);
                        slept += step;
                    }
                }
                // One final evaluation so the end-of-run state (e.g. a
                // breach resolving as the pipeline parks) still lands in
                // the log before shutdown.
                self.center.eval_snapshot(&self.recorder.snapshot());
            })
            .expect("spawning the alert watch thread");
        WatchHandle {
            stop,
            thread: Some(thread),
        }
    }
}

/// Handle to a running watch; dropping it stops the thread.
pub struct WatchHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl WatchHandle {
    /// Stops the watch (after one final evaluation) and joins the
    /// thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for WatchHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::parse_rules;
    use opad_telemetry::Recorder;

    #[test]
    fn watch_picks_up_a_breach_and_final_eval_runs_on_shutdown() {
        let (rules, _) = parse_rules("alert b when gauge g > 1");
        let center = Arc::new(AlertCenter::new(rules));
        let recorder = Arc::new(LiveRecorder::new());
        let watch = AlertWatch::new(recorder.clone(), center.clone())
            .interval(Duration::from_millis(5))
            .spawn();
        recorder.gauge_set("g", 2.0);
        // The watch should observe the breach within a few polls.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !center.any_firing() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(center.any_firing(), "watch never observed the breach");
        // Recovery lands at the latest via the final shutdown eval.
        recorder.gauge_set("g", 0.0);
        watch.shutdown();
        assert!(!center.any_firing());
        let history = center.history();
        assert_eq!(
            history.last().map(|t| t.to),
            Some(crate::engine::AlertState::Resolved)
        );
    }
}
