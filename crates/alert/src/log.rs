//! The `alerts.jsonl` line format: one schema-versioned JSON object per
//! lifecycle transition, appended through the existing
//! [`JsonlSink`](opad_telemetry::JsonlSink) machinery so alert history
//! gets the same buffered, drop-flushed, line-oriented discipline as
//! run traces — and the same readers.
//!
//! ```json
//! {"v":1,"kind":"alert","t_ms":120.0,"alert":"pfd_bound_breach",
//!  "severity":"critical","from":"pending","to":"firing","value":0.21}
//! ```

use crate::engine::{AlertState, Transition};
use crate::rule::Severity;
use opad_telemetry::{parse_json, JsonValue};

/// Version of the alert-log line layout.
pub const ALERT_LOG_VERSION: u32 = 1;

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Serialises one transition as an `alerts.jsonl` line (no trailing
/// newline; [`JsonlSink::append_line`](opad_telemetry::JsonlSink::append_line)
/// adds it).
pub fn transition_to_json(t: &Transition) -> String {
    let mut out = format!(
        "{{\"v\":{ALERT_LOG_VERSION},\"kind\":\"alert\",\"t_ms\":{},\"alert\":\"{}\",\"severity\":\"{}\",\"from\":\"{}\",\"to\":\"{}\"",
        json_f64(t.t_ms),
        t.alert,
        t.severity,
        t.from,
        t.to,
    );
    if let Some(v) = t.value {
        out.push_str(&format!(",\"value\":{}", json_f64(v)));
    }
    out.push('}');
    out
}

/// Parses one `alerts.jsonl` line back into a [`Transition`]. Returns
/// `None` for lines that are not version-1 alert records (other kinds
/// sharing the file are skipped, mirroring the trace reader's
/// unknown-field tolerance).
pub fn transition_from_json(line: &str) -> Option<Transition> {
    let v = parse_json(line).ok()?;
    if v.get("kind").and_then(JsonValue::as_str) != Some("alert") {
        return None;
    }
    if v.get("v").and_then(JsonValue::as_u64)? > ALERT_LOG_VERSION as u64 {
        return None;
    }
    Some(Transition {
        t_ms: v.get("t_ms").and_then(JsonValue::as_f64)?,
        alert: v.get("alert").and_then(JsonValue::as_str)?.to_string(),
        severity: Severity::parse(v.get("severity").and_then(JsonValue::as_str)?)?,
        from: AlertState::parse(v.get("from").and_then(JsonValue::as_str)?)?,
        to: AlertState::parse(v.get("to").and_then(JsonValue::as_str)?)?,
        value: v.get("value").and_then(JsonValue::as_f64),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_round_trip_through_the_line_format() {
        let t = Transition {
            t_ms: 120.5,
            alert: "pfd_bound_breach".to_string(),
            severity: Severity::Critical,
            from: AlertState::Pending,
            to: AlertState::Firing,
            value: Some(0.21),
        };
        let line = transition_to_json(&t);
        assert!(line.starts_with("{\"v\":1,\"kind\":\"alert\""), "{line}");
        assert_eq!(transition_from_json(&line), Some(t));
        // Value-less transitions omit the field and come back None.
        let t2 = Transition {
            t_ms: 0.0,
            alert: "x".to_string(),
            severity: Severity::Info,
            from: AlertState::Firing,
            to: AlertState::Resolved,
            value: None,
        };
        let line2 = transition_to_json(&t2);
        assert!(!line2.contains("value"), "{line2}");
        assert_eq!(transition_from_json(&line2), Some(t2));
    }

    #[test]
    fn foreign_lines_are_skipped_not_errors() {
        assert_eq!(transition_from_json("{\"v\":1,\"kind\":\"sample\"}"), None);
        assert_eq!(transition_from_json("not json"), None);
        assert_eq!(
            transition_from_json("{\"v\":99,\"kind\":\"alert\",\"t_ms\":0}"),
            None,
            "future versions are not guessed at"
        );
    }
}
