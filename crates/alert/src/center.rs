//! [`AlertCenter`]: the shared, thread-safe face of one
//! [`AlertEngine`] — the thing the watch thread evaluates through, the
//! pipeline installs rules into, and `opad-serve` reads `/alerts` from.

use crate::engine::{AlertEngine, AlertStatus, Transition};
use crate::frame::MetricsFrame;
use crate::log::transition_to_json;
use crate::rule::Rule;
use opad_telemetry::{JsonlSink, LiveSnapshot, Sink};
use opad_tsdb::TsdbStore;
use std::sync::{Arc, Mutex};

/// How many recent transitions the in-memory history ring keeps (the
/// full stream goes to the JSONL log; the ring only feeds `/alerts` and
/// demos).
const HISTORY_CAP: usize = 256;

/// A shared alert engine: interior-mutable, with an optional
/// `alerts.jsonl` log every transition is appended to.
///
/// Evaluation serialises on one mutex, which is fine by construction:
/// frames arrive from a single watch thread every few hundred
/// milliseconds, and readers (`/alerts`, `/healthz`) only take the lock
/// long enough to clone statuses. The metrics hot path never touches
/// this lock — rules see snapshots, not recording calls.
pub struct AlertCenter {
    engine: Mutex<AlertEngine>,
    history: Mutex<Vec<Transition>>,
    log: Option<Arc<JsonlSink>>,
    /// The history plane window conditions evaluate through, when one
    /// is attached ([`attach_series`](AlertCenter::attach_series)).
    series: Mutex<Option<Arc<TsdbStore>>>,
}

impl AlertCenter {
    /// A center over `rules`, with no transition log.
    pub fn new(rules: Vec<Rule>) -> AlertCenter {
        AlertCenter {
            engine: Mutex::new(AlertEngine::new(rules)),
            history: Mutex::new(Vec::new()),
            log: None,
            series: Mutex::new(None),
        }
    }

    /// A center that appends every transition to `log` (one JSON object
    /// per line, the [`crate::log`] format).
    pub fn with_log(rules: Vec<Rule>, log: Arc<JsonlSink>) -> AlertCenter {
        AlertCenter {
            log: Some(log),
            ..AlertCenter::new(rules)
        }
    }

    /// Installs every rule not already present (by name); returns how
    /// many were added. Idempotent per pack — `opad-core` calls this
    /// every round.
    pub fn ensure_rules(&self, rules: &[Rule]) -> usize {
        self.lock_engine().ensure_rules(rules)
    }

    /// Whether a rule with this name is installed.
    pub fn has_rule(&self, name: &str) -> bool {
        self.lock_engine().has_rule(name)
    }

    /// Attaches the history store window conditions (`rate(c, 10s) >`)
    /// evaluate through. Until one is attached those conditions are
    /// simply false. Typically the same store a
    /// [`Sampler`](opad_tsdb::Sampler) feeds from the same recorder the
    /// watch thread polls.
    pub fn attach_series(&self, store: Arc<TsdbStore>) {
        *self.series.lock().expect("alert lock poisoned") = Some(store);
    }

    /// The attached history store, if any.
    pub fn series(&self) -> Option<Arc<TsdbStore>> {
        self.series.lock().expect("alert lock poisoned").clone()
    }

    /// Evaluates every rule against an explicit frame, logging and
    /// remembering any transitions. Returns them.
    pub fn eval_frame(&self, frame: &MetricsFrame) -> Vec<Transition> {
        let store = self.series();
        let transitions = self
            .lock_engine()
            .eval_with_history(frame, store.as_deref());
        if !transitions.is_empty() {
            if let Some(log) = &self.log {
                for t in &transitions {
                    log.append_line(&transition_to_json(t));
                }
                log.flush();
            }
            let mut history = self.history.lock().expect("alert lock poisoned");
            for t in &transitions {
                if history.len() == HISTORY_CAP {
                    history.remove(0);
                }
                history.push(t.clone());
            }
        }
        transitions
    }

    /// Evaluates against a live recorder snapshot (the watch thread's
    /// path).
    pub fn eval_snapshot(&self, snap: &LiveSnapshot) -> Vec<Transition> {
        self.eval_frame(&MetricsFrame::from_snapshot(snap))
    }

    /// Every rule's current status, in rule order.
    pub fn statuses(&self) -> Vec<AlertStatus> {
        self.lock_engine().statuses()
    }

    /// Whether any rule is currently firing.
    pub fn any_firing(&self) -> bool {
        self.lock_engine().any_firing()
    }

    /// How many rules are currently firing.
    pub fn firing_count(&self) -> usize {
        self.lock_engine()
            .statuses()
            .iter()
            .filter(|s| s.state == crate::engine::AlertState::Firing)
            .count()
    }

    /// The most recent transitions (up to an internal cap), oldest
    /// first.
    pub fn history(&self) -> Vec<Transition> {
        self.history.lock().expect("alert lock poisoned").clone()
    }

    fn lock_engine(&self) -> std::sync::MutexGuard<'_, AlertEngine> {
        self.engine.lock().expect("alert lock poisoned")
    }
}

impl std::fmt::Debug for AlertCenter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlertCenter")
            .field("rules", &self.lock_engine().rules().len())
            .field("logging", &self.log.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::parse_rules;

    fn rules(text: &str) -> Vec<Rule> {
        let (rules, errors) = parse_rules(text);
        assert!(errors.is_empty(), "{errors:?}");
        rules
    }

    #[test]
    fn center_logs_every_transition_as_jsonl() {
        let dir = std::env::temp_dir().join("opad_alert_center_log_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("alerts.jsonl");
        let log = Arc::new(JsonlSink::create(&path).expect("log creates"));
        let center =
            AlertCenter::with_log(rules("alert b severity=critical when gauge g > 1"), log);
        let mut frame = MetricsFrame::new(10.0);
        frame.set_gauge("g", 2.0);
        let fired = center.eval_frame(&frame);
        assert_eq!(fired.len(), 2, "inactive→pending→firing");
        assert!(center.any_firing());
        assert_eq!(center.firing_count(), 1);
        let mut frame = MetricsFrame::new(20.0);
        frame.set_gauge("g", 0.0);
        center.eval_frame(&frame);
        let text = std::fs::read_to_string(&path).expect("log exists");
        let parsed: Vec<_> = text
            .lines()
            .map(|l| crate::log::transition_from_json(l).expect("parses"))
            .collect();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[2].to, crate::engine::AlertState::Resolved);
        assert_eq!(center.history().len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn attached_series_feeds_window_conditions() {
        use opad_tsdb::{Sample, SeriesKind};
        let center = AlertCenter::new(rules("alert stalled when rate(c, 2s) < 1"));
        let store = Arc::new(TsdbStore::new());
        for i in 0..9u32 {
            store.push(
                "c",
                SeriesKind::Counter,
                Sample {
                    t_ms: i as f64 * 250.0,
                    value: 5.0, // flat from the start: rate 0
                },
            );
        }
        // Window rules are inert until the store is attached.
        assert!(center.eval_frame(&MetricsFrame::new(2_000.0)).is_empty());
        center.attach_series(store.clone());
        assert!(center.series().is_some());
        let ts = center.eval_frame(&MetricsFrame::new(2_000.0));
        assert_eq!(ts.len(), 2, "{ts:?}");
        assert!(center.any_firing());
    }

    #[test]
    fn snapshot_evaluation_reads_the_live_recorder() {
        use opad_telemetry::{LiveRecorder, Recorder};
        let center = AlertCenter::new(rules("alert seeds when counter c >= 3"));
        let rec = LiveRecorder::new();
        rec.counter_add("c", 2);
        assert!(center.eval_snapshot(&rec.snapshot()).is_empty());
        rec.counter_add("c", 1);
        let ts = center.eval_snapshot(&rec.snapshot());
        assert_eq!(ts.len(), 2);
        assert!(center.any_firing());
    }
}
