//! Replay determinism across worker-pool widths.
//!
//! The alerting contract is that a recorded run replays to the *exact*
//! same transition transcript no matter the machine — including when
//! the metrics being recorded were produced by `opad-par` fan-outs at
//! different thread counts. Counters are commutative sums and the
//! engine's clock is the frame clock, so OPAD_THREADS must be
//! invisible to the transcript.

use opad_alert::rule::parse_rules;
use opad_alert::{replay, AlertState, MetricsFrame, Transition};
use opad_par::{override_threads, par_map};
use opad_telemetry::{LiveRecorder, Recorder};

const PACK: &str = "\
alert breach severity=critical for=500ms when gauge reliability.pfd_mean > 0.05
alert stall for=1s when counter_stall par.tasks
alert slow when hist task_score p99 >= 90
";

/// Runs a deterministic metric-producing workload at `threads` workers
/// and returns the frame the engine would see at clock `t_ms`.
fn workload_frame(threads: usize, t_ms: f64, pfd: f64) -> MetricsFrame {
    let _guard = override_threads(threads);
    let rec = LiveRecorder::new();
    let scores: Vec<u64> = par_map(&(0..64).collect::<Vec<u64>>(), |_, i| (*i * 13) % 100);
    for s in &scores {
        rec.counter_add("par.tasks", 1);
        rec.histogram_record("task_score", *s as f64);
    }
    rec.gauge_set("reliability.pfd_mean", pfd);
    let mut frame = MetricsFrame::from_snapshot(&rec.snapshot());
    // Pin the clock: wall time is the one legitimately nondeterministic
    // snapshot field, and the engine only ever reads t_ms from frames.
    frame.t_ms = t_ms;
    frame
}

/// Drives one full lifecycle (quiet → breach → sustain → recover)
/// through a fresh engine at the given thread count.
fn transcript(threads: usize) -> (Vec<Transition>, Vec<(String, AlertState)>) {
    let (rules, errors) = parse_rules(PACK);
    assert!(errors.is_empty(), "{errors:?}");
    let mut engine = opad_alert::AlertEngine::new(rules);
    let mut transitions = Vec::new();
    for (t_ms, pfd) in [(0.0, 0.01), (100.0, 0.21), (700.0, 0.21), (900.0, 0.02)] {
        transitions.extend(engine.eval(&workload_frame(threads, t_ms, pfd)));
    }
    let finals = engine
        .statuses()
        .into_iter()
        .map(|s| (s.name, s.state))
        .collect();
    (transitions, finals)
}

#[test]
fn transcripts_match_at_one_and_four_threads() {
    let (t1, f1) = transcript(1);
    let (t4, f4) = transcript(4);
    assert_eq!(t1, t4, "thread count leaked into the alert transcript");
    assert_eq!(f1, f4);
    // And the transcript is the canonical full lifecycle for `breach`.
    let breach: Vec<(AlertState, AlertState)> = t1
        .iter()
        .filter(|t| t.alert == "breach")
        .map(|t| (t.from, t.to))
        .collect();
    assert_eq!(
        breach,
        vec![
            (AlertState::Inactive, AlertState::Pending),
            (AlertState::Pending, AlertState::Firing),
            (AlertState::Firing, AlertState::Resolved),
        ]
    );
}

#[test]
fn recorded_stream_replays_identically_regardless_of_ambient_threads() {
    // A textual sample stream is already thread-independent; assert the
    // whole replay path (parse → accumulate → evaluate) is too, even
    // when run under different pool widths.
    let stream = r#"
{"v":1,"kind":"sample","t_ms":0,"type":"gauge","name":"reliability.pfd_mean","value":0.01}
{"v":1,"kind":"sample","t_ms":0,"type":"counter","name":"par.tasks","total":64}
{"v":1,"kind":"tick","t_ms":0}
{"v":1,"kind":"sample","t_ms":100,"type":"gauge","name":"reliability.pfd_mean","value":0.30}
{"v":1,"kind":"tick","t_ms":100}
{"v":1,"kind":"tick","t_ms":700}
{"v":1,"kind":"sample","t_ms":2000,"type":"gauge","name":"reliability.pfd_mean","value":0.01}
{"v":1,"kind":"tick","t_ms":2000}
"#;
    let run = |threads: usize| {
        let _guard = override_threads(threads);
        let (rules, errors) = parse_rules(PACK);
        assert!(errors.is_empty(), "{errors:?}");
        replay(rules, stream)
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(a.transitions, b.transitions);
    assert_eq!(a.statuses, b.statuses);
    assert_eq!(a.errors, b.errors);
    // The stall rule trips at t=2000 (counter frozen past its 1s
    // budget) in both runs — a real transition, not an empty transcript.
    assert!(
        a.transitions
            .iter()
            .any(|t| t.alert == "stall" && t.to == AlertState::Firing),
        "{:?}",
        a.transitions
    );
}
