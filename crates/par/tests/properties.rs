//! Property and edge-case tests for the worker pool: the guarantees the
//! rest of the workspace leans on (order preservation, panic propagation,
//! degenerate inputs, nesting) hold at every thread count.

use opad_par::{override_threads, par_chunks, par_map, par_ranges, par_reduce};
use proptest::prelude::*;

proptest! {
    #[test]
    fn par_map_preserves_order_and_length(
        items in proptest::collection::vec(any::<i64>(), 0..200),
        threads in 1usize..9,
    ) {
        let _g = override_threads(threads);
        let out = par_map(&items, |i, &x| (i, x.wrapping_mul(3)));
        prop_assert_eq!(out.len(), items.len());
        for (i, (idx, v)) in out.into_iter().enumerate() {
            prop_assert_eq!(idx, i);
            prop_assert_eq!(v, items[i].wrapping_mul(3));
        }
    }

    #[test]
    fn par_chunks_agrees_with_serial_chunking(
        items in proptest::collection::vec(any::<i32>(), 0..150),
        chunk in 1usize..40,
        threads in 1usize..9,
    ) {
        let _g = override_threads(threads);
        let got = par_chunks(&items, chunk, |_, c| c.iter().map(|&x| x as i64).sum::<i64>());
        let want: Vec<i64> = items
            .chunks(chunk)
            .map(|c| c.iter().map(|&x| x as i64).sum())
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn par_reduce_is_thread_count_invariant(
        values in proptest::collection::vec(any::<u32>(), 1..100),
    ) {
        // Concatenation is non-commutative: any out-of-order fold shows up.
        let reduce_at = |threads: usize| {
            let _g = override_threads(threads);
            par_reduce(
                values.len(),
                |i| format!("{}:{};", i, values[i]),
                String::new(),
                |acc, s| acc + &s,
            )
        };
        let serial = reduce_at(1);
        for t in [2, 4, 8] {
            prop_assert_eq!(&reduce_at(t), &serial);
        }
    }
}

#[test]
fn empty_input_yields_empty_output() {
    let _g = override_threads(4);
    assert!(par_map(&[] as &[u8], |_, &x| x).is_empty());
    assert!(par_chunks(&[] as &[u8], 5, |_, c| c.len()).is_empty());
    assert!(par_ranges(0, 3, |_, r| r).is_empty());
    assert_eq!(par_reduce(0, |i| i, 42usize, |a, b| a + b), 42);
}

#[test]
fn chunk_size_larger_than_len_is_one_chunk() {
    let _g = override_threads(4);
    let items = [1u8, 2, 3];
    let out = par_chunks(&items, 64, |idx, c| (idx, c.to_vec()));
    assert_eq!(out, vec![(0, vec![1, 2, 3])]);
}

#[test]
fn single_thread_runs_the_same_code_path() {
    // OPAD_THREADS=1 (here pinned via the override) must give identical
    // results to any parallel run — it drains the same task queue.
    let items: Vec<u64> = (0..37).collect();
    let serial = {
        let _g = override_threads(1);
        par_map(&items, |i, &x| x * x + i as u64)
    };
    let parallel = {
        let _g = override_threads(8);
        par_map(&items, |i, &x| x * x + i as u64)
    };
    assert_eq!(serial, parallel);
}

#[test]
fn worker_panic_propagates_to_the_caller() {
    for threads in [1usize, 4] {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = override_threads(threads);
            par_map(&[1u32, 2, 3, 4, 5, 6, 7, 8], |_, &x| {
                if x == 5 {
                    panic!("task blew up");
                }
                x
            })
        }));
        assert!(result.is_err(), "panic must surface at {threads} threads");
    }
}

#[test]
fn nested_par_map_does_not_deadlock() {
    // Scoped threads are spawned per call, not drawn from a fixed-size
    // pool, so inner fan-outs can never starve waiting for outer workers.
    let _g = override_threads(4);
    let outer: Vec<Vec<usize>> = par_map(&[10usize, 20, 30], |_, &n| {
        let inner: Vec<usize> = (0..8).collect();
        par_map(&inner, |_, &j| n + j)
    });
    assert_eq!(outer.len(), 3);
    assert_eq!(outer[0], (10..18).collect::<Vec<_>>());
    assert_eq!(outer[2], (30..38).collect::<Vec<_>>());
}
