//! # opad-par
//!
//! A deterministic scoped worker pool for the opad kernels: `par_map`,
//! `par_chunks` / `par_ranges`, and an ordered `par_reduce`, built on
//! `std::thread::scope` with no third-party dependencies.
//!
//! The contract that makes this crate worth having is **determinism**:
//! for the same inputs, every function here returns byte-identical output
//! at any thread count. Three rules deliver that:
//!
//! 1. **Indexed output slots.** Each task writes its result into its own
//!    slot; results are collected in task order, never completion order.
//! 2. **Fixed work geometry.** Chunk boundaries are a function of the
//!    input size and the caller's chunk size only — never of the thread
//!    count — so floating-point partials are always combined over the
//!    same element ranges.
//! 3. **Ordered reduction.** [`par_reduce`] folds per-task partials
//!    serially in task order after the parallel map phase.
//!
//! Thread count comes from the `OPAD_THREADS` environment variable
//! (read once per process; unset or invalid means
//! `std::thread::available_parallelism`). `OPAD_THREADS=1` runs the same
//! task-drain code path on the calling thread — the serial fallback is
//! not a separate implementation. Tests and benchmarks pin the count
//! with [`override_threads`], which also serialises them against each
//! other (the override is process state).
//!
//! Every executed task increments the `par.tasks` counter, records its
//! duration in the `par.task_us` histogram, and runs inside a `par.task`
//! telemetry span attributed to the span that was live on the
//! *dispatching* thread (via [`opad_telemetry::span_with_parent`]), so
//! traces stay a single tree across the pool.
//!
//! The crate also hosts the RNG-splitting helpers ([`splitmix64`],
//! [`stream_seed`]) the pipeline uses to give each purpose / seed / chunk
//! its own independent random stream instead of interleaved draws on one
//! shared generator.
//!
//! # Examples
//!
//! ```
//! let squares = opad_par::par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! // Ordered reduction: partial sums fold in task order.
//! let total = opad_par::par_reduce(4, |i| i as u64, 0u64, |acc, p| acc + p);
//! assert_eq!(total, 0 + 1 + 2 + 3);
//! ```

#![warn(missing_docs)]

mod bench;

pub use bench::ParBenches;

use opad_telemetry as telemetry;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

// 0 = no override; tests/benches write the pinned count here.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
// Serialises override holders so two tests cannot fight over the count.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());
// OPAD_THREADS resolution, cached once per process (kernels consult the
// thread count on every call; re-reading the environment there would put
// a lock acquisition into hot loops).
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

/// The worker count the pool will use: the active [`override_threads`]
/// value if one is held, else `OPAD_THREADS` (read once per process),
/// else `std::thread::available_parallelism`. Never zero.
pub fn threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Acquire);
    if o > 0 {
        return o;
    }
    *ENV_THREADS.get_or_init(|| match std::env::var("OPAD_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    })
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// RAII guard pinning the pool's thread count, overriding `OPAD_THREADS`.
///
/// Obtained from [`override_threads`]; restores the previous state on
/// drop. Holding it owns a process-global lock, so concurrent holders
/// (e.g. `cargo test` threads) serialise instead of racing — this is the
/// supported way to vary the thread count inside one process, since
/// mutating the environment mid-run is racy.
pub struct ThreadsOverride {
    prev: usize,
    _lock: MutexGuard<'static, ()>,
}

impl Drop for ThreadsOverride {
    fn drop(&mut self) {
        THREAD_OVERRIDE.store(self.prev, Ordering::Release);
    }
}

/// Pins the pool to exactly `n` worker threads until the guard drops.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn override_threads(n: usize) -> ThreadsOverride {
    assert!(n > 0, "thread count must be nonzero");
    // A poisoned lock only means another override holder panicked; the
    // override state itself is restored by its Drop, so continue.
    let lock = OVERRIDE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let prev = THREAD_OVERRIDE.swap(n, Ordering::AcqRel);
    ThreadsOverride { prev, _lock: lock }
}

/// SplitMix64: a full-period bijective mixer over `u64`. The standard
/// tool for deriving many independent RNG seeds from one base seed —
/// nearby inputs map to statistically unrelated outputs.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// An RNG seed for stream `idx` derived from `base`: seed the per-seed /
/// per-chunk generator with `stream_seed(base, i)` and every stream is
/// independent of its neighbours and of how many there are. Different
/// *purposes* should use different `base` values (e.g. successive
/// [`splitmix64`] iterates of a round seed).
pub fn stream_seed(base: u64, idx: u64) -> u64 {
    splitmix64(base ^ splitmix64(idx.wrapping_add(1)))
}

/// Runs `tasks` index-addressed jobs on the pool and returns their
/// results in task order. The building block under everything else.
fn run_tasks<U, F>(tasks: usize, run: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    if tasks == 0 {
        return Vec::new();
    }
    let workers = threads().min(tasks);
    // Worker-side spans attribute to whatever span is live here on the
    // dispatching thread.
    let parent = telemetry::current_span_id();
    let slots: Vec<Mutex<Option<U>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let drain = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= tasks {
            break;
        }
        let _task_span = telemetry::span_with_parent("par.task", parent);
        let started = Instant::now();
        let value = run(i);
        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
        telemetry::counter_add("par.tasks", 1);
        telemetry::histogram_record("par.task_us", started.elapsed().as_secs_f64() * 1e6);
    };
    if workers <= 1 {
        // Serial fallback: the identical drain loop, on this thread.
        drain();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                // `drain` only captures shared references, so it is Copy
                // and every worker gets its own handle.
                scope.spawn(drain);
            }
        });
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every task index below `tasks` ran")
        })
        .collect()
}

/// Applies `f` to every item (with its index) in parallel, preserving
/// order and length. One task per item — use for coarse work units like
/// per-seed attacks; for fine-grained numeric loops prefer
/// [`par_ranges`] so each task amortises dispatch overhead.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    run_tasks(items.len(), |i| f(i, &items[i]))
}

/// Splits `items` into consecutive chunks of `chunk_size` (the last may
/// be short) and applies `f` to each, returning one result per chunk in
/// chunk order. Chunk boundaries depend only on the input length and
/// `chunk_size`, never on the thread count.
///
/// # Panics
///
/// Panics if `chunk_size` is zero.
pub fn par_chunks<T, U, F>(items: &[T], chunk_size: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &[T]) -> U + Sync,
{
    par_ranges(items.len(), chunk_size, |chunk_idx, range| {
        f(chunk_idx, &items[range])
    })
}

/// Like [`par_chunks`] but over an index space instead of a slice: the
/// range `0..n` is cut into consecutive `chunk_size`-wide ranges and `f`
/// runs once per range. This is the right shape for kernels that index
/// several buffers at once (matmul rows, conv batch entries, MC chunks).
///
/// # Panics
///
/// Panics if `chunk_size` is zero while `n` is not.
pub fn par_ranges<U, F>(n: usize, chunk_size: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize, Range<usize>) -> U + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    assert!(chunk_size > 0, "chunk size must be nonzero");
    let tasks = n.div_ceil(chunk_size);
    run_tasks(tasks, |chunk_idx| {
        let start = chunk_idx * chunk_size;
        let end = (start + chunk_size).min(n);
        f(chunk_idx, start..end)
    })
}

/// Deterministic ordered reduction: runs `tasks` jobs in parallel, then
/// folds their results into `init` serially **in task order**. Because
/// the fold order is fixed, non-associative accumulations (floating
/// point, error short-circuiting) give the same answer at every thread
/// count.
pub fn par_reduce<U, A, M, F>(tasks: usize, map: M, init: A, fold: F) -> A
where
    U: Send,
    M: Fn(usize) -> U + Sync,
    F: FnMut(A, U) -> A,
{
    run_tasks(tasks, map).into_iter().fold(init, fold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(0), splitmix64(0));
        // Consecutive inputs land far apart.
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 8);
    }

    #[test]
    fn stream_seeds_are_distinct_per_index_and_base() {
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 7, 123456789] {
            for idx in 0..64 {
                assert!(seen.insert(stream_seed(base, idx)));
            }
        }
    }

    #[test]
    fn threads_is_positive_and_override_pins() {
        assert!(threads() >= 1);
        {
            let _g = override_threads(3);
            assert_eq!(threads(), 3);
            // The same drain path must work under an override.
            let out = par_map(&[1, 2, 3, 4, 5], |_, &x| x * 2);
            assert_eq!(out, vec![2, 4, 6, 8, 10]);
        }
        assert!(threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_override_rejected() {
        let _ = override_threads(0);
    }

    #[test]
    fn par_reduce_folds_in_task_order() {
        let _g = override_threads(4);
        let order = par_reduce(
            16,
            |i| i,
            Vec::new(),
            |mut acc: Vec<usize>, i| {
                acc.push(i);
                acc
            },
        );
        assert_eq!(order, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn ranges_cover_exactly_once() {
        let _g = override_threads(4);
        for n in [0usize, 1, 7, 8, 9, 100] {
            for chunk in [1usize, 3, 8, 200] {
                let ranges = par_ranges(n, chunk, |_, r| r);
                let flat: Vec<usize> = ranges.into_iter().flatten().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} chunk={chunk}");
            }
        }
    }

    #[test]
    fn telemetry_counts_tasks_identically_across_thread_counts() {
        use opad_telemetry::MetricsRecorder;
        use std::sync::Arc;

        let mut counts = Vec::new();
        for t in [1usize, 4] {
            let _g = override_threads(t);
            let rec = Arc::new(MetricsRecorder::new());
            telemetry::install(rec.clone());
            let _ = par_ranges(100, 16, |_, r| r.len());
            telemetry::uninstall();
            let s = rec.summary();
            counts.push((
                s.counter("par.tasks"),
                s.histogram("par.task_us").map(|h| h.count),
            ));
        }
        assert_eq!(counts[0], (Some(7), Some(7)), "ceil(100/16) tasks");
        assert_eq!(counts[0], counts[1], "task geometry ignores thread count");
    }

    #[test]
    fn worker_spans_attribute_to_dispatching_span() {
        use opad_telemetry::{Event, MetricsRecorder, TestSink};
        use std::sync::Arc;

        let _g = override_threads(2);
        let sink = Arc::new(TestSink::new());
        let rec = Arc::new(MetricsRecorder::with_sink(sink.clone()));
        telemetry::install(rec);
        {
            let _outer = telemetry::span("fanout");
            let _ = par_map(&[1, 2, 3], |_, &x| x + 1);
        }
        telemetry::uninstall();
        let events = sink.events();
        let fanout_id = events
            .iter()
            .find_map(|e| match e {
                Event::SpanStart { id, name, .. } if *name == "fanout" => Some(*id),
                _ => None,
            })
            .expect("fanout span recorded");
        let task_parents: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::SpanStart { parent, name, .. } if *name == "par.task" => Some(*parent),
                _ => None,
            })
            .collect();
        assert_eq!(task_parents.len(), 3);
        assert!(task_parents.iter().all(|p| *p == Some(fanout_id)));
    }
}
