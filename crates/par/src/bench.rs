//! Micro-benchmark registry for the worker pool (`obsctl bench`).
//!
//! These kernels measure the pool's own overheads — dispatch, slot
//! collection, ordered reduction, RNG stream splitting — the fixed costs
//! every parallelised kernel in the workspace pays on top of its real
//! work. Std-only, so a baseline is recordable even where the
//! rand/serde-dependent kernel crates cannot compile.

use crate::{override_threads, par_map, par_reduce, splitmix64, stream_seed};
use opad_telemetry::{BenchKernel, Benchmarkable};
use std::hint::black_box;

/// The crate's [`Benchmarkable`] registry: pool dispatch at 1 and 4
/// threads over identical work, plus the RNG-splitting helpers.
pub struct ParBenches;

impl Benchmarkable for ParBenches {
    fn bench_kernels() -> Vec<BenchKernel> {
        let items: Vec<u64> = (0..4096).collect();
        // Serial-vs-parallel pair over the same mixing workload, thread
        // count pinned from inside the kernel (the override serialises
        // concurrent holders, so snapshots stay deterministic).
        let map_at = |name: &'static str, threads: usize| {
            let items = items.clone();
            BenchKernel::new(name, move || {
                let _pin = override_threads(threads);
                black_box(par_map(&items, |_, &x| {
                    let mut h = x;
                    for _ in 0..16 {
                        h = splitmix64(h);
                    }
                    h
                }));
            })
        };
        vec![
            map_at("par/par_map_4k_t1", 1),
            map_at("par/par_map_4k_t4", 4),
            BenchKernel::new("par/par_reduce_64x1k", || {
                let _pin = override_threads(4);
                let total = par_reduce(
                    64,
                    |task| {
                        let mut acc = 0u64;
                        for i in 0..1000u64 {
                            acc = acc.wrapping_add(splitmix64(task as u64 ^ i));
                        }
                        acc
                    },
                    0u64,
                    |acc, p| acc.wrapping_add(p),
                );
                black_box(total);
            }),
            BenchKernel::new("par/stream_seed_4k", || {
                let mut acc = 0u64;
                for i in 0..4096 {
                    acc ^= stream_seed(0x9e37_79b9_7f4a_7c15, i);
                }
                black_box(acc);
            }),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_and_every_kernel_runs() {
        let mut kernels = ParBenches::bench_kernels();
        assert!(kernels.len() >= 4);
        for k in &mut kernels {
            assert!(k.name.starts_with("par/"), "{}", k.name);
            (k.run)();
        }
    }

    #[test]
    fn the_t1_t4_pair_computes_identical_results() {
        let items: Vec<u64> = (0..512).collect();
        let run = |threads| {
            let _pin = override_threads(threads);
            par_map(&items, |_, &x| splitmix64(x))
        };
        assert_eq!(run(1), run(4));
    }
}
