//! End-to-end smoke test: bind on an ephemeral port, scrape the
//! endpoints over a real `TcpStream`, and verify graceful shutdown.
//! `scripts/check.sh` runs this test by name as the serve smoke gate.

use opad_serve::{MetricsServer, ServerConfig};
use opad_telemetry::{parse_json, LiveRecorder, Recorder};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn fixture_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("opad_serve_smoke_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir is creatable");
    dir
}

/// One plain HTTP GET; returns (status line, body).
fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("server accepts connections");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout is settable");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("request writes");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("server closes the connection after responding");
    let status = response.lines().next().unwrap_or_default().to_string();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn serves_metrics_healthz_and_runs_then_shuts_down_gracefully() {
    let results = fixture_dir("endpoints");
    std::fs::write(
        results.join("exp_live.json"),
        r#"{"schema_version":1,"experiment":"exp_live","run_id":"live-1",
           "telemetry":{"wall_ms":77.0}}"#,
    )
    .expect("fixture writes");
    let bench = fixture_dir("endpoints_bench");
    std::fs::write(
        bench.join("BENCH_0003.json"),
        r#"{"schema_version":2,"seq":3,"run_id":"live-1","kernels":[
           {"name":"par/par_map_4k_t1","p50_ns":1500.5,"min_ns":1400.0}]}"#,
    )
    .expect("fixture writes");

    let recorder = Arc::new(LiveRecorder::new());
    recorder.counter_add("pipeline.seeds_attacked", 30);
    recorder.gauge_set("reliability.pfd_mean", 0.0125);
    recorder.gauge_set("pipeline.round", 3.0);
    recorder.gauge_set("pipeline.phase", opad_telemetry::phase::FUZZ as f64);
    recorder.histogram_record("attack.iters", 4.0);
    recorder.span_start("round", 1, None);
    recorder.span_end("round", 1, None, 12.0);

    let handle = MetricsServer::new(
        recorder,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            results_dir: results.clone(),
            bench_dir: bench.clone(),
            git_commit: "smoke123".to_string(),
        },
    )
    .spawn()
    .expect("ephemeral port binds");
    let addr = handle.addr();
    assert_ne!(addr.port(), 0, "the handle reports the real port");

    let (status, body) = get(addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(
        body.contains("opad_pipeline_seeds_attacked_total 30"),
        "{body}"
    );
    assert!(body.contains("opad_reliability_pfd_mean 0.0125"), "{body}");
    assert!(
        body.contains("opad_span_wall_ms_count{span=\"round\"} 1"),
        "{body}"
    );
    assert!(
        body.contains("opad_attack_iters_bucket{le=\"+Inf\"} 1"),
        "{body}"
    );
    assert!(body.contains("opad_bench_snapshot_seq 3"), "{body}");
    assert!(
        body.contains("opad_bench_kernel_min_ns{kernel=\"par/par_map_4k_t1\"} 1400"),
        "{body}"
    );

    assert!(
        body.contains("opad_build_info{git_commit=\"smoke123\",version=\""),
        "{body}"
    );

    let (status, body) = get(addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    let health = parse_json(body.trim()).expect("healthz is valid JSON");
    assert_eq!(health.get("status").and_then(|v| v.as_str()), Some("ok"));
    assert_eq!(health.get("round").and_then(|v| v.as_u64()), Some(3));
    assert_eq!(health.get("phase").and_then(|v| v.as_str()), Some("fuzz"));
    assert_eq!(
        health.get("git_commit").and_then(|v| v.as_str()),
        Some("smoke123")
    );
    assert_eq!(
        health.get("alerts_firing").and_then(|v| v.as_u64()),
        Some(0),
        "no alert center attached"
    );

    // Without an attached alert center, /alerts is an empty (but valid)
    // document rather than an error.
    let (status, body) = get(addr, "/alerts");
    assert!(status.contains("200"), "{status}");
    let alerts = parse_json(body.trim()).expect("alerts is valid JSON");
    assert_eq!(alerts.get("firing").and_then(|v| v.as_u64()), Some(0));

    let (status, body) = get(addr, "/runs");
    assert!(status.contains("200"), "{status}");
    let runs = parse_json(body.trim()).expect("runs is valid JSON");
    let rows = runs.as_arr().expect("array");
    assert_eq!(rows.len(), 1, "{body}");
    assert_eq!(
        rows[0].get("experiment").and_then(|v| v.as_str()),
        Some("exp_live")
    );

    let (status, _) = get(addr, "/nope");
    assert!(status.contains("404"), "{status}");

    // Graceful shutdown: the call returns (the loop joined) and the
    // port stops accepting.
    handle.shutdown();
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener must be closed after shutdown"
    );
    let _ = std::fs::remove_dir_all(&results);
    let _ = std::fs::remove_dir_all(&bench);
}

#[test]
fn alert_center_drives_alerts_metrics_and_degraded_health() {
    use opad_alert::{parse_rules, AlertCenter, MetricsFrame};

    let (rules, errors) =
        parse_rules("alert pfd_breach severity=critical when gauge reliability.pfd_mean > 0.05");
    assert!(errors.is_empty(), "{errors:?}");
    let center = Arc::new(AlertCenter::new(rules));
    let recorder = Arc::new(LiveRecorder::new());
    let handle = MetricsServer::new(
        recorder.clone(),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            results_dir: fixture_dir("alerts"),
            bench_dir: fixture_dir("alerts_bench"),
            git_commit: "smoke123".to_string(),
        },
    )
    .alerts(center.clone())
    .spawn()
    .expect("ephemeral port binds");
    let addr = handle.addr();

    // Quiet: /alerts lists the rule inactive, health is ok.
    let (_, body) = get(addr, "/alerts");
    let alerts = parse_json(body.trim()).expect("alerts is valid JSON");
    assert_eq!(alerts.get("firing").and_then(|v| v.as_u64()), Some(0));
    let rows = alerts
        .get("alerts")
        .and_then(|v| v.as_arr())
        .expect("array");
    assert_eq!(rows.len(), 1, "{body}");
    assert_eq!(
        rows[0].get("state").and_then(|v| v.as_str()),
        Some("inactive")
    );
    let (_, body) = get(addr, "/metrics");
    assert!(body.contains("opad_alerts_firing 0"), "{body}");
    assert!(!body.contains("ALERTS{"), "{body}");

    // Breach: the server reports the same state the engine holds.
    recorder.gauge_set("reliability.pfd_mean", 0.21);
    let mut frame = MetricsFrame::from_snapshot(&recorder.snapshot());
    frame.t_ms = 100.0;
    center.eval_frame(&frame);

    let (_, body) = get(addr, "/alerts");
    let alerts = parse_json(body.trim()).expect("alerts is valid JSON");
    assert_eq!(alerts.get("firing").and_then(|v| v.as_u64()), Some(1));
    let (_, body) = get(addr, "/metrics");
    assert!(
        body.contains("ALERTS{alertname=\"pfd_breach\",severity=\"critical\",state=\"firing\"} 1"),
        "{body}"
    );
    let (_, body) = get(addr, "/healthz");
    let health = parse_json(body.trim()).expect("healthz is valid JSON");
    assert_eq!(
        health.get("status").and_then(|v| v.as_str()),
        Some("degraded")
    );
    assert_eq!(
        health.get("alerts_firing").and_then(|v| v.as_u64()),
        Some(1)
    );

    // Recovery: /healthz flips back to ok.
    recorder.gauge_set("reliability.pfd_mean", 0.01);
    let mut frame = MetricsFrame::from_snapshot(&recorder.snapshot());
    frame.t_ms = 200.0;
    center.eval_frame(&frame);
    let (_, body) = get(addr, "/healthz");
    let health = parse_json(body.trim()).expect("healthz is valid JSON");
    assert_eq!(health.get("status").and_then(|v| v.as_str()), Some("ok"));

    handle.shutdown();
}

#[test]
fn timeseries_and_query_serve_the_attached_history_store() {
    use opad_tsdb::{Sample, SeriesKind, TsdbStore};

    let store = Arc::new(TsdbStore::new());
    for i in 0..5u32 {
        store.push(
            "pipeline.seeds_attacked",
            SeriesKind::Counter,
            Sample {
                t_ms: i as f64 * 250.0,
                value: (i * 10) as f64,
            },
        );
    }
    store.set_expected_interval_ms(250.0);
    let recorder = Arc::new(LiveRecorder::new());
    let handle = MetricsServer::new(
        recorder,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            results_dir: fixture_dir("tsdb"),
            bench_dir: fixture_dir("tsdb_bench"),
            git_commit: "smoke123".to_string(),
        },
    )
    .timeseries(store.clone())
    .spawn()
    .expect("ephemeral port binds");
    let addr = handle.addr();

    let (status, body) = get(addr, "/timeseries");
    assert!(status.contains("200"), "{status}");
    let doc = parse_json(body.trim()).expect("valid JSON");
    let series = doc.get("series").and_then(|v| v.as_arr()).expect("array");
    assert_eq!(series.len(), 1, "{body}");
    assert_eq!(
        series[0].get("name").and_then(|v| v.as_str()),
        Some("pipeline.seeds_attacked")
    );

    let (status, body) = get(addr, "/timeseries?all=1&window=500ms");
    assert!(status.contains("200"), "{status}");
    let doc = parse_json(body.trim()).expect("valid JSON");
    let series = doc.get("series").and_then(|v| v.as_arr()).expect("array");
    let samples = series[0]
        .get("samples")
        .and_then(|v| v.as_arr())
        .expect("samples present in all mode");
    assert_eq!(samples.len(), 3, "{body}");

    let (status, body) = get(addr, "/query?expr=rate(pipeline.seeds_attacked,%2010s)");
    assert!(status.contains("200"), "{status} {body}");
    let doc = parse_json(body.trim()).expect("valid JSON");
    assert_eq!(doc.get("value").and_then(|v| v.as_f64()), Some(40.0));

    let (status, _) = get(addr, "/query?expr=rate(nope,10s)");
    assert!(status.contains("404"), "{status}");
    let (status, _) = get(addr, "/query?expr=%28%28");
    assert!(status.contains("400"), "{status}");

    // The sampler block: samples exist and the frame clock has barely
    // advanced past them, but the store was stamped by hand at t=1000ms
    // while the recorder just started — so age is near zero only if the
    // recorder clock ran past 1000ms, which it hasn't: age clamps at 0
    // and the sampler reads fresh.
    let (_, body) = get(addr, "/healthz");
    let health = parse_json(body.trim()).expect("valid JSON");
    let sampler = health.get("sampler").expect("sampler block present");
    assert_eq!(
        sampler.get("last_sample_ms").and_then(|v| v.as_f64()),
        Some(1000.0)
    );
    assert_eq!(sampler.get("stale").and_then(|v| v.as_bool()), Some(false));
    assert_eq!(health.get("status").and_then(|v| v.as_str()), Some("ok"));

    handle.shutdown();
}

#[test]
fn healthz_degrades_when_the_sampler_never_sampled() {
    use opad_tsdb::TsdbStore;

    let recorder = Arc::new(LiveRecorder::new());
    let handle = MetricsServer::new(
        recorder,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            results_dir: fixture_dir("tsdb_stale"),
            bench_dir: fixture_dir("tsdb_stale_bench"),
            git_commit: "smoke123".to_string(),
        },
    )
    .timeseries(Arc::new(TsdbStore::new()))
    .spawn()
    .expect("ephemeral port binds");
    let addr = handle.addr();

    let (_, body) = get(addr, "/healthz");
    let health = parse_json(body.trim()).expect("valid JSON");
    assert_eq!(
        health.get("status").and_then(|v| v.as_str()),
        Some("degraded"),
        "{body}"
    );
    let sampler = health.get("sampler").expect("sampler block present");
    assert_eq!(sampler.get("stale").and_then(|v| v.as_bool()), Some(true));

    // An empty /timeseries index is still a valid 200 document.
    let (status, body) = get(addr, "/timeseries");
    assert!(status.contains("200"), "{status}");
    let doc = parse_json(body.trim()).expect("valid JSON");
    assert_eq!(
        doc.get("series").and_then(|v| v.as_arr()).map(|a| a.len()),
        Some(0)
    );

    handle.shutdown();
}

#[test]
fn malformed_requests_get_400_and_do_not_wedge_the_loop() {
    let recorder = Arc::new(LiveRecorder::new());
    let handle = MetricsServer::new(
        recorder,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            results_dir: fixture_dir("bad_requests"),
            bench_dir: fixture_dir("bad_requests_bench"),
            ..ServerConfig::default()
        },
    )
    .spawn()
    .expect("ephemeral port binds");
    let addr = handle.addr();

    let mut stream = TcpStream::connect(addr).expect("connects");
    write!(stream, "garbage\r\n\r\n").expect("writes");
    let mut response = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout is settable");
    stream.read_to_string(&mut response).expect("reads");
    assert!(response.contains("400"), "{response}");

    // POST is rejected but the server keeps serving afterwards.
    let mut stream = TcpStream::connect(addr).expect("still accepting");
    write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").expect("writes");
    let mut response = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout is settable");
    stream.read_to_string(&mut response).expect("reads");
    assert!(response.contains("405"), "{response}");

    let (status, _) = get(addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    handle.shutdown();
}
