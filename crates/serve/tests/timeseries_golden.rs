//! Golden-file tests of the `/timeseries` and `/query` JSON bodies:
//! the exact bytes a dashboard or `obsctl watch` sees for a fixed store,
//! pinned so renderer drift is a deliberate act, not an accident.

use opad_serve::{query_json, timeseries_json};
use opad_telemetry::parse_json;
use opad_tsdb::{Sample, SeriesKind, TsdbStore};

/// A deterministic history fixture: a counter ramping 40/s and a pfd
/// gauge decaying, five samples each on a 250 ms cadence.
fn fixture_store() -> TsdbStore {
    let store = TsdbStore::new();
    for i in 0..5u32 {
        let t = i as f64 * 250.0;
        store.push(
            "pipeline.seeds_attacked",
            SeriesKind::Counter,
            Sample {
                t_ms: t,
                value: (i * 10) as f64,
            },
        );
        store.push(
            "reliability.pfd_mean",
            SeriesKind::Gauge,
            Sample {
                t_ms: t,
                value: 0.05 - i as f64 * 0.01,
            },
        );
    }
    store
}

#[test]
fn timeseries_all_matches_the_golden_file() {
    let (code, body) = timeseries_json(&fixture_store(), "all=1&window=500ms");
    assert_eq!(code, 200);
    let golden = include_str!("golden/timeseries_all.json");
    assert_eq!(
        body, golden,
        "/timeseries body drifted from tests/golden/timeseries_all.json — \
         if the change is intentional, regenerate the golden file from this \
         output"
    );
    assert!(parse_json(body.trim()).is_ok(), "{body}");
}

#[test]
fn timeseries_index_matches_the_golden_file() {
    let (code, body) = timeseries_json(&fixture_store(), "");
    assert_eq!(code, 200);
    let golden = include_str!("golden/timeseries_index.json");
    assert_eq!(
        body, golden,
        "/timeseries index drifted from tests/golden/timeseries_index.json — \
         if the change is intentional, regenerate the golden file from this \
         output"
    );
    assert!(parse_json(body.trim()).is_ok(), "{body}");
}

#[test]
fn query_matches_the_golden_file() {
    let (code, body) = query_json(&fixture_store(), "expr=rate(pipeline.seeds_attacked,+10s)");
    assert_eq!(code, 200);
    let golden = include_str!("golden/query_rate.json");
    assert_eq!(
        body, golden,
        "/query body drifted from tests/golden/query_rate.json — if the \
         change is intentional, regenerate the golden file from this output"
    );
    assert!(parse_json(body.trim()).is_ok(), "{body}");
}
