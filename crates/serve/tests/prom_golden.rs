//! Golden-file tests of the Prometheus exposition renderer, plus a
//! structural parse of everything it emits — the acceptance gate that
//! `/metrics` output is actually scrapeable.

use opad_alert::{AlertState, AlertStatus, Severity};
use opad_serve::{
    render_alert_metrics, render_bench_metrics, render_build_info, render_metrics, BenchGauges,
    BenchKernelGauge,
};
use opad_telemetry::{FixedHistogram, LiveRecorder, LiveSnapshot, Recorder};
use std::sync::Arc;

/// A fully deterministic snapshot: fixed wall clock, fixed values, and
/// names chosen to exercise sanitization (dots) and label escaping
/// (quote, backslash, newline in a span name).
fn fixture_snapshot() -> LiveSnapshot {
    let mut lat = FixedHistogram::new();
    for v in [0.05, 0.5, 2.0, 7.0, 400.0] {
        lat.record(v);
    }
    let mut round = FixedHistogram::new();
    round.record(12.0);
    round.record(30.0);
    let mut weird = FixedHistogram::new();
    weird.record(1.5);
    LiveSnapshot {
        wall_ms: 1234.5,
        events: 42,
        counters: vec![
            ("pipeline.aes_found".to_string(), 7),
            ("pipeline.seeds_attacked".to_string(), 30),
        ],
        gauges: vec![
            ("pipeline.phase".to_string(), 2.0),
            ("reliability.pfd_mean".to_string(), 0.0125),
        ],
        histograms: vec![("attack.pgd.iters_ms".to_string(), lat)],
        spans: vec![
            ("round".to_string(), round),
            ("odd\"name\\with\nnasties".to_string(), weird),
        ],
    }
}

/// Structural validation of one exposition document: every non-comment
/// line is `name{labels} value` with a legal metric name and a
/// parseable value, and every `_bucket` series is cumulative.
fn assert_parses(text: &str) {
    let name_ok = |name: &str| {
        !name.is_empty()
            && name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };
    let mut bucket_track: Option<(String, u64)> = None;
    for line in text.lines() {
        if line.starts_with('#') {
            let mut parts = line.split_whitespace();
            assert_eq!(parts.next(), Some("#"), "{line}");
            assert_eq!(parts.next(), Some("TYPE"), "{line}");
            let family = parts.next().expect("TYPE line names a family");
            assert!(name_ok(family), "bad family name in {line:?}");
            assert!(
                matches!(parts.next(), Some("counter" | "gauge" | "histogram")),
                "{line}"
            );
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("SERIES SPACE VALUE");
        assert!(
            value == "+Inf" || value == "-Inf" || value == "NaN" || value.parse::<f64>().is_ok(),
            "unparseable value in {line:?}"
        );
        let name = series.split('{').next().expect("name prefix");
        assert!(name_ok(name), "bad metric name in {line:?}");
        if let Some(labels) = series
            .strip_prefix(name)
            .and_then(|rest| rest.strip_prefix('{'))
            .and_then(|rest| rest.strip_suffix('}'))
        {
            // Escapes must leave no bare quote inside a label value: the
            // body between the outer quotes, unescaped, re-escapes to
            // itself (round-trip check is overkill; check pairing).
            let quotes = labels.replace("\\\\", "").replace("\\\"", "");
            assert_eq!(
                quotes.matches('"').count() % 2,
                0,
                "unbalanced quotes in {line:?}"
            );
            assert!(!quotes.contains('\n'), "raw newline in {line:?}");
        }
        if name.ends_with("_bucket") {
            let count: u64 = value.parse().expect("bucket counts are integers");
            let key = series
                .replace(' ', "")
                .split("le=")
                .next()
                .expect("le label present")
                .to_string();
            match &mut bucket_track {
                Some((prev_key, prev)) if *prev_key == key => {
                    assert!(*prev <= count, "non-cumulative buckets at {line:?}");
                    *prev = count;
                }
                _ => bucket_track = Some((key, count)),
            }
        }
    }
}

#[test]
fn exposition_matches_the_golden_file() {
    let rendered = render_metrics(&fixture_snapshot());
    let golden = include_str!("golden/metrics.txt");
    assert_eq!(
        rendered, golden,
        "exposition drifted from tests/golden/metrics.txt — if the change \
         is intentional, regenerate the golden file from this output"
    );
}

#[test]
fn golden_exposition_parses_structurally() {
    assert_parses(&render_metrics(&fixture_snapshot()));
}

#[test]
fn a_live_recorder_driven_snapshot_parses_too() {
    let rec = Arc::new(LiveRecorder::new());
    rec.counter_add("pipeline.seeds_attacked", 3);
    rec.gauge_set("pipeline.pfd_mean", 1.25e-3);
    for v in [0.2, 3.0, 900.0, -1.0] {
        rec.histogram_record("attack.linf.dist", v);
    }
    rec.span_start("round", 1, None);
    rec.span_end("round", 1, None, 40.0);
    let text = render_metrics(&rec.snapshot());
    assert!(
        text.contains("opad_pipeline_seeds_attacked_total 3"),
        "{text}"
    );
    assert_parses(&text);
}

/// A deterministic bench snapshot slice, with one kernel name chosen to
/// exercise label escaping.
fn fixture_bench_gauges() -> BenchGauges {
    let kernel = |name: &str, p50_ns: f64, min_ns: f64| BenchKernelGauge {
        name: name.to_string(),
        p50_ns,
        min_ns,
    };
    BenchGauges {
        seq: 7,
        run_id: "abc1234".to_string(),
        kernels: vec![
            kernel("par/par_map_4k_t1", 152000.5, 140250.0),
            kernel("telemetry/counter_add_1k", 9800.0, 9500.25),
            kernel("odd\"kernel", 10.0, 9.0),
        ],
    }
}

#[test]
fn bench_exposition_matches_the_golden_file() {
    let rendered = render_bench_metrics(&fixture_bench_gauges());
    let golden = include_str!("golden/bench_metrics.txt");
    assert_eq!(
        rendered, golden,
        "bench exposition drifted from tests/golden/bench_metrics.txt — if \
         the change is intentional, regenerate the golden file from this \
         output"
    );
}

#[test]
fn bench_exposition_parses_structurally() {
    assert_parses(&render_bench_metrics(&fixture_bench_gauges()));
}

#[test]
fn an_empty_bench_snapshot_emits_only_the_sequence_gauge() {
    let rendered = render_bench_metrics(&BenchGauges {
        seq: 1,
        run_id: "abc1234".to_string(),
        kernels: Vec::new(),
    });
    assert_eq!(
        rendered,
        "# TYPE opad_bench_snapshot_seq gauge\nopad_bench_snapshot_seq 1\n"
    );
    assert_parses(&rendered);
}

/// A deterministic alert-state slice: one of each lifecycle state, so
/// the golden pins both what renders (pending, firing) and what must
/// not (inactive, resolved).
fn fixture_alert_statuses() -> Vec<AlertStatus> {
    let status = |name: &str, severity, state, value| AlertStatus {
        name: name.to_string(),
        severity,
        state,
        since_ms: 500.0,
        value,
        condition: "gauge reliability.pfd_mean > 0.05".to_string(),
    };
    vec![
        status(
            "pfd_bound_breach",
            Severity::Critical,
            AlertState::Firing,
            Some(0.21),
        ),
        status(
            "naturalness_drift",
            Severity::Warning,
            AlertState::Pending,
            Some(-31.0),
        ),
        status("fuzz_dead", Severity::Warning, AlertState::Inactive, None),
        status(
            "stuck_phase",
            Severity::Critical,
            AlertState::Resolved,
            None,
        ),
    ]
}

#[test]
fn alert_exposition_matches_the_golden_file() {
    let rendered = render_alert_metrics(&fixture_alert_statuses());
    let golden = include_str!("golden/alert_metrics.txt");
    assert_eq!(
        rendered, golden,
        "alert exposition drifted from tests/golden/alert_metrics.txt — if \
         the change is intentional, regenerate the golden file from this \
         output"
    );
}

#[test]
fn alert_exposition_parses_structurally() {
    assert_parses(&render_alert_metrics(&fixture_alert_statuses()));
}

#[test]
fn build_info_exposition_parses_and_carries_the_commit() {
    let rendered = render_build_info("abc1234-dirty");
    assert_parses(&rendered);
    assert!(
        rendered.contains("opad_build_info{git_commit=\"abc1234-dirty\",version=\""),
        "{rendered}"
    );
    assert!(rendered.ends_with("\"} 1\n"), "{rendered}");
}

#[test]
fn escaped_span_labels_round_trip_the_nasty_characters() {
    let rendered = render_metrics(&fixture_snapshot());
    assert!(
        rendered.contains(r#"span="odd\"name\\with\nnasties""#),
        "{rendered}"
    );
}
