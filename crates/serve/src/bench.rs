//! The newest `BENCH_<seq>.json` snapshot, loaded for `/metrics`.
//!
//! `opad-serve` exposes the latest benchmark snapshot's per-kernel
//! `p50_ns` / `min_ns` as labeled gauges so dashboards can plot the perf
//! trajectory next to the live pipeline metrics. The loader is
//! deliberately forgiving: a missing directory, an unparsable snapshot
//! or a schema from the future simply means no bench gauges — a broken
//! benchmark file must never take down the scrape endpoint.

use opad_telemetry::{bench_files, parse_json, JsonValue, BENCH_SCHEMA_VERSION};
use std::path::Path;

/// One kernel's exported timings.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchKernelGauge {
    /// Kernel name (`<crate>/<kernel>`), exported as the `kernel` label.
    pub name: String,
    /// Median iteration time in nanoseconds.
    pub p50_ns: f64,
    /// Fastest iteration in nanoseconds (the gate statistic).
    pub min_ns: f64,
}

/// The slice of a bench snapshot `/metrics` exposes.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchGauges {
    /// Snapshot sequence number.
    pub seq: u32,
    /// Run id of the recording working tree.
    pub run_id: String,
    /// Per-kernel timings, in snapshot order.
    pub kernels: Vec<BenchKernelGauge>,
}

/// Loads the highest-sequence `BENCH_<seq>.json` under `dir` (padded and
/// unpadded names). `None` when no snapshot exists or the newest one is
/// unreadable, unparsable, or declares a newer schema than supported.
pub fn load_latest_bench(dir: &Path) -> Option<BenchGauges> {
    let (seq, path) = bench_files(dir).into_iter().next_back()?;
    let text = std::fs::read_to_string(path).ok()?;
    let doc = parse_json(&text).ok()?;
    let version = doc.get("schema_version").and_then(JsonValue::as_u64)?;
    if version > u64::from(BENCH_SCHEMA_VERSION) {
        return None;
    }
    let run_id = doc.get("run_id").and_then(JsonValue::as_str)?.to_string();
    let kernels = doc
        .get("kernels")
        .and_then(JsonValue::as_arr)?
        .iter()
        .filter_map(|k| {
            Some(BenchKernelGauge {
                name: k.get("name")?.as_str()?.to_string(),
                p50_ns: k.get("p50_ns").and_then(JsonValue::as_f64)?,
                min_ns: k.get("min_ns").and_then(JsonValue::as_f64)?,
            })
        })
        .collect();
    Some(BenchGauges {
        seq,
        run_id,
        kernels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("opad_serve_bench_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir is creatable");
        dir
    }

    #[test]
    fn the_highest_sequence_snapshot_wins() {
        let dir = fixture_dir("latest");
        std::fs::write(
            dir.join("BENCH_1.json"),
            "{\"schema_version\": 1, \"run_id\": \"old\", \"kernels\": []}",
        )
        .expect("fixture writes");
        std::fs::write(
            dir.join("BENCH_0002.json"),
            "{\"schema_version\": 2, \"run_id\": \"new\", \"kernels\": [\
             {\"name\": \"par/par_map_4k_t1\", \"p50_ns\": 120000.5, \"min_ns\": 110000.0}]}",
        )
        .expect("fixture writes");
        let g = load_latest_bench(&dir).expect("latest snapshot loads");
        assert_eq!(g.seq, 2);
        assert_eq!(g.run_id, "new");
        assert_eq!(g.kernels.len(), 1);
        assert_eq!(g.kernels[0].name, "par/par_map_4k_t1");
        assert!((g.kernels[0].min_ns - 110000.0).abs() < 1e-9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn broken_or_future_snapshots_yield_no_gauges() {
        let dir = fixture_dir("broken");
        assert_eq!(load_latest_bench(&dir), None);
        std::fs::write(dir.join("BENCH_0001.json"), "not json").expect("fixture writes");
        assert_eq!(load_latest_bench(&dir), None);
        std::fs::write(
            dir.join("BENCH_0002.json"),
            "{\"schema_version\": 99, \"run_id\": \"future\", \"kernels\": []}",
        )
        .expect("fixture writes");
        assert_eq!(load_latest_bench(&dir), None);
        assert_eq!(load_latest_bench(Path::new("/nonexistent/nowhere")), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rows_missing_required_fields_are_skipped_not_fatal() {
        let dir = fixture_dir("partial");
        std::fs::write(
            dir.join("BENCH_0001.json"),
            "{\"schema_version\": 2, \"run_id\": \"r\", \"kernels\": [\
             {\"name\": \"ok/kernel\", \"p50_ns\": 10.0, \"min_ns\": 9.0},\
             {\"name\": \"broken/no_numbers\"}]}",
        )
        .expect("fixture writes");
        let g = load_latest_bench(&dir).expect("snapshot loads");
        assert_eq!(g.kernels.len(), 1);
        assert_eq!(g.kernels[0].name, "ok/kernel");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
