//! The history faces of the server: `GET /timeseries` (series index and
//! windowed raw samples out of the attached [`TsdbStore`]) and
//! `GET /query?expr=` (one windowed expression, evaluated at the frame
//! clock of the newest sample — never the wall clock, so a response is
//! reproducible against an exported stream).

use crate::alerts::{fmt_json_f64, json_str};
use opad_tsdb::{parse_duration_ms, parse_expr, QueryError, Sample, SeriesInfo, TsdbStore};
use std::fmt::Write;

/// Version stamped into every `/timeseries` and `/query` body.
pub const TIMESERIES_VERSION: u32 = 1;

/// Renders `GET /timeseries` for a raw query string. Returns
/// `(status, json_body)`.
///
/// * no parameters — the series index (name, kind, ring occupancy,
///   eviction odometer, covered time span per series);
/// * `?series=NAME[&window=DUR]` — one series' samples, optionally cut
///   to the trailing window ending at the store's newest timestamp;
/// * `?all=1[&window=DUR]` — index *and* samples for every series in
///   one response (the shape `obsctl watch` polls).
pub fn timeseries_json(store: &TsdbStore, query: &str) -> (u16, String) {
    let params = parse_query(query);
    let window_ms = match param(&params, "window") {
        Some(text) => match parse_duration_ms(text) {
            Ok(ms) => Some(ms),
            Err(e) => return (400, error_body(&format!("bad window: {e}"))),
        },
        None => None,
    };
    let t_last = store.last_sample_ms();
    if let Some(name) = param(&params, "series") {
        let samples = match windowed_samples(store, name, t_last, window_ms) {
            Ok(s) => s,
            Err(e @ QueryError::UnknownSeries(_)) => return (404, error_body(&e.to_string())),
            Err(e) => return (400, error_body(&e.to_string())),
        };
        let info = store
            .series_index()
            .into_iter()
            .find(|i| i.name == name)
            .expect("series exists: samples() succeeded");
        let mut out = String::with_capacity(256);
        let _ = write!(out, "{{\"v\":{TIMESERIES_VERSION},");
        push_series_obj(&mut out, &info, Some(&samples));
        out.push_str("}\n");
        return (200, out);
    }
    let with_samples = param(&params, "all").is_some();
    let mut out = String::with_capacity(512);
    let _ = write!(
        out,
        "{{\"v\":{TIMESERIES_VERSION},\"t_last\":{},\"series\":[",
        t_last.map_or_else(|| "null".to_string(), fmt_json_f64),
    );
    for (i, info) in store.series_index().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let samples = if with_samples {
            windowed_samples(store, &info.name, t_last, window_ms).ok()
        } else {
            None
        };
        out.push('{');
        push_series_obj(&mut out, info, samples.as_deref());
        out.push('}');
    }
    out.push_str("]}\n");
    (200, out)
}

/// Renders `GET /query?expr=…`: parses the expression through the tsdb
/// grammar, evaluates it at the newest sample's frame clock, and
/// returns `{"v":…,"expr":…,"t_ms":…,"value":…}` — or a JSON error with
/// 400 (malformed / unevaluable) or 404 (unknown series).
pub fn query_json(store: &TsdbStore, query: &str) -> (u16, String) {
    let params = parse_query(query);
    let Some(text) = param(&params, "expr") else {
        return (400, error_body("missing expr parameter"));
    };
    let expr = match parse_expr(text) {
        Ok(e) => e,
        Err(e) => return (400, error_body(&e.to_string())),
    };
    let Some(t_end) = store.last_sample_ms() else {
        return (404, error_body("no samples recorded yet"));
    };
    match store.eval_expr(&expr, t_end) {
        Ok(value) => (
            200,
            format!(
                "{{\"v\":{TIMESERIES_VERSION},\"expr\":{},\"t_ms\":{},\"value\":{}}}\n",
                json_str(&expr.to_string()),
                fmt_json_f64(t_end),
                fmt_json_f64(value),
            ),
        ),
        Err(e @ QueryError::UnknownSeries(_)) => (404, error_body(&e.to_string())),
        Err(e) => (400, error_body(&e.to_string())),
    }
}

/// One series' samples, cut to the trailing `window_ms` ending at the
/// store's newest timestamp when a window was asked for.
fn windowed_samples(
    store: &TsdbStore,
    name: &str,
    t_last: Option<f64>,
    window_ms: Option<f64>,
) -> Result<Vec<Sample>, QueryError> {
    match (window_ms, t_last) {
        (Some(w), Some(t1)) => store.samples_between(name, t1 - w, t1),
        _ => store.samples(name),
    }
}

/// Appends the inner fields of one series object (no surrounding
/// braces, so callers can prepend their own keys).
fn push_series_obj(out: &mut String, info: &SeriesInfo, samples: Option<&[Sample]>) {
    let _ = write!(
        out,
        "\"name\":{},\"kind\":\"{}\",\"len\":{},\"capacity\":{},\"evictions\":{},\"t_first\":{},\"t_last\":{}",
        json_str(&info.name),
        info.kind.as_str(),
        info.len,
        info.capacity,
        info.evictions,
        fmt_json_f64(info.t_first),
        fmt_json_f64(info.t_last),
    );
    if let Some(samples) = samples {
        out.push_str(",\"samples\":[");
        for (i, s) in samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{},{}]", fmt_json_f64(s.t_ms), fmt_json_f64(s.value));
        }
        out.push(']');
    }
}

fn error_body(message: &str) -> String {
    format!("{{\"error\":{}}}\n", json_str(message))
}

/// Splits a raw query string (`a=1&b=two%20words`) into decoded
/// key/value pairs. Keys without `=` get an empty value.
pub fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

fn param<'a>(params: &'a [(String, String)], key: &str) -> Option<&'a str> {
    params
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// Decodes `%XX` escapes and `+`-as-space (the form-encoding browsers
/// and curl produce for expressions like `rate(c,+10s)`). Invalid
/// escapes pass through literally rather than erroring — the decoded
/// text then fails expression parsing with a better message.
fn percent_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => match (hex_val(bytes[i + 1]), hex_val(bytes[i + 2])) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opad_telemetry::{parse_json, JsonValue};
    use opad_tsdb::SeriesKind;

    fn seeded_store() -> TsdbStore {
        let store = TsdbStore::new();
        for i in 0..5u32 {
            let t = i as f64 * 250.0;
            store.push(
                "pipeline.seeds_attacked",
                SeriesKind::Counter,
                Sample {
                    t_ms: t,
                    value: (i * 10) as f64,
                },
            );
            store.push(
                "reliability.pfd_mean",
                SeriesKind::Gauge,
                Sample {
                    t_ms: t,
                    value: 0.05 - i as f64 * 0.01,
                },
            );
        }
        store
    }

    #[test]
    fn percent_decoding_handles_escapes_and_plus() {
        assert_eq!(percent_decode("rate(c%2C+10s)"), "rate(c, 10s)");
        assert_eq!(percent_decode("a%20b"), "a b");
        assert_eq!(percent_decode("bad%2"), "bad%2");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
    }

    #[test]
    fn index_lists_every_series_name_sorted() {
        let (code, body) = timeseries_json(&seeded_store(), "");
        assert_eq!(code, 200);
        let doc = parse_json(body.trim()).expect("valid JSON");
        let series = doc.get("series").and_then(JsonValue::as_arr).unwrap();
        let names: Vec<&str> = series
            .iter()
            .map(|s| s.get("name").and_then(JsonValue::as_str).unwrap())
            .collect();
        assert_eq!(
            names,
            vec!["pipeline.seeds_attacked", "reliability.pfd_mean"]
        );
        assert_eq!(
            series[0].get("kind").and_then(JsonValue::as_str),
            Some("counter")
        );
        assert_eq!(doc.get("t_last").and_then(JsonValue::as_f64), Some(1000.0));
        // Index responses carry no sample payloads.
        assert!(series[0].get("samples").is_none());
    }

    #[test]
    fn single_series_window_cuts_the_tail() {
        let store = seeded_store();
        let (code, body) = timeseries_json(&store, "series=pipeline.seeds_attacked&window=500ms");
        assert_eq!(code, 200, "{body}");
        let doc = parse_json(body.trim()).expect("valid JSON");
        let samples = doc.get("samples").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(samples.len(), 3, "window [500,1000] holds 3 samples");
        assert_eq!(samples[0].as_arr().unwrap()[0].as_f64(), Some(500.0));
        let (code, body) = timeseries_json(&store, "series=nope");
        assert_eq!(code, 404, "{body}");
        assert!(body.contains("unknown series"), "{body}");
    }

    #[test]
    fn all_mode_carries_samples_for_every_series() {
        let (code, body) = timeseries_json(&seeded_store(), "all=1");
        assert_eq!(code, 200);
        let doc = parse_json(body.trim()).expect("valid JSON");
        for series in doc.get("series").and_then(JsonValue::as_arr).unwrap() {
            let samples = series.get("samples").and_then(JsonValue::as_arr).unwrap();
            assert_eq!(samples.len(), 5);
        }
    }

    #[test]
    fn query_evaluates_expressions_at_the_frame_clock() {
        let store = seeded_store();
        let (code, body) = query_json(&store, "expr=rate(pipeline.seeds_attacked,+10s)");
        assert_eq!(code, 200, "{body}");
        let doc = parse_json(body.trim()).expect("valid JSON");
        assert_eq!(
            doc.get("expr").and_then(JsonValue::as_str),
            Some("rate(pipeline.seeds_attacked, 10s)")
        );
        assert_eq!(doc.get("t_ms").and_then(JsonValue::as_f64), Some(1000.0));
        assert_eq!(doc.get("value").and_then(JsonValue::as_f64), Some(40.0));
        let (code, _) = query_json(&store, "expr=reliability.pfd_mean");
        assert_eq!(code, 200);
    }

    #[test]
    fn query_errors_map_to_http_statuses() {
        let store = seeded_store();
        let cases = [
            ("", 400, "missing expr"),
            ("expr=rate(nope,10s)", 404, "unknown series"),
            ("expr=rate(pipeline.seeds_attacked", 400, "missing"),
            ("expr=avg_over_time(reliability.pfd_mean,0s)", 400, "window"),
        ];
        for (query, want_code, want_frag) in cases {
            let (code, body) = query_json(&store, query);
            assert_eq!(code, want_code, "{query}: {body}");
            assert!(
                body.to_lowercase().contains(want_frag),
                "{query}: {body} should mention {want_frag}"
            );
        }
        let empty = TsdbStore::new();
        let (code, body) = query_json(&empty, "expr=rate(c,10s)");
        assert_eq!(code, 404, "{body}");
        assert!(body.contains("no samples"), "{body}");
    }

    #[test]
    fn bad_window_parameter_is_a_400() {
        let (code, body) = timeseries_json(&seeded_store(), "window=soon");
        assert_eq!(code, 400);
        assert!(body.contains("bad window"), "{body}");
    }
}
