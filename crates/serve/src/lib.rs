//! # opad-serve
//!
//! The pull side of the live observability plane: a std-only HTTP/1.1
//! server over [`std::net::TcpListener`] that exposes a
//! [`LiveRecorder`](opad_telemetry::LiveRecorder)'s metrics while the
//! testing loop is still running.
//!
//! Endpoints:
//!
//! * `GET /metrics` — Prometheus text exposition format v0.0.4:
//!   counters as `opad_*_total`, gauges as `opad_*`, histograms and
//!   per-span wall-time rollups as `_bucket`/`_sum`/`_count` families,
//!   with metric-name sanitization and label-value escaping per the
//!   exposition spec, plus the newest `BENCH_<seq>.json` snapshot's
//!   per-kernel `p50_ns`/`min_ns` as `opad_bench_kernel_*` gauges
//!   labeled by kernel (the perf trajectory, scrapeable next to the
//!   live pipeline metrics);
//! * `GET /healthz` — liveness JSON including the pipeline's current
//!   round and phase (read off the `pipeline.round` / `pipeline.phase`
//!   gauges published by `opad-core`, decoded through the checked
//!   [`phase::gauge_label`](opad_telemetry::phase::gauge_label)), build
//!   provenance (`git_commit`, `version`), and — when an
//!   [`AlertCenter`](opad_alert::AlertCenter) is attached — a `status`
//!   that flips from `ok` to `degraded` while any alert is firing;
//! * `GET /alerts` — JSON state of every attached alert rule (name,
//!   severity, lifecycle state, last value, condition) plus the firing
//!   count;
//! * `GET /runs` — JSON list of the run envelopes discovered under the
//!   configured `results/` directory, so a dashboard can pair the live
//!   metrics with finished-run artefacts;
//! * `GET /timeseries` — with a [`TsdbStore`](opad_tsdb::TsdbStore)
//!   attached ([`MetricsServer::timeseries`]): the history plane's
//!   series index, one series' windowed samples
//!   (`?series=NAME&window=10s`), or index + samples for everything
//!   (`?all=1` — the shape `obsctl watch` polls);
//! * `GET /query?expr=rate(pipeline.seeds_attacked,10s)` — one window
//!   expression evaluated at the newest sample's frame clock.
//!
//! With a history store attached, `/healthz` additionally reports
//! sampler liveness (`sampler.age_ms`, the age of the newest sample)
//! and degrades when the sampler has stalled.
//!
//! `/metrics` additionally carries `opad_build_info{git_commit,version} 1`
//! and, with an alert center attached, the Prometheus-convention
//! `ALERTS{alertname,severity,state}` constant-1 series for every
//! pending/firing alert (attach via [`MetricsServer::alerts`]).
//!
//! The accept loop is bounded: one handler services connections
//! sequentially off a non-blocking accept with a short poll sleep, so a
//! scrape storm degrades to queueing in the kernel backlog instead of a
//! thread-per-connection pileup. Shutdown is graceful: the handle flips
//! a flag and joins the loop, which finishes any in-flight response
//! first. Scrapes are read-only over the recorder's lock-free snapshot —
//! they never block the recording hot path.
//!
//! # Examples
//!
//! ```no_run
//! use std::sync::Arc;
//! use opad_telemetry::LiveRecorder;
//! use opad_serve::{MetricsServer, ServerConfig};
//!
//! let recorder = Arc::new(LiveRecorder::new());
//! opad_telemetry::install(recorder.clone());
//! let handle = MetricsServer::new(recorder, ServerConfig::default())
//!     .spawn()
//!     .expect("bind");
//! println!("metrics at http://{}/metrics", handle.addr());
//! // ... run the experiment ...
//! handle.shutdown();
//! ```

#![warn(missing_docs)]

mod alerts;
mod bench;
mod http;
mod prom;
mod runs;
mod server;
mod timeseries;

pub use alerts::{alerts_json, render_alert_metrics, render_build_info};
pub use bench::{load_latest_bench, BenchGauges, BenchKernelGauge};
pub use http::{read_request, write_response, Request};
pub use prom::{
    escape_label_value, render_bench_metrics, render_metrics, sanitize_metric_name, CONTENT_TYPE,
};
pub use runs::runs_json;
pub use server::{MetricsServer, ServerConfig, ServerHandle};
pub use timeseries::{parse_query, query_json, timeseries_json, TIMESERIES_VERSION};
