//! The alert faces of the server: `/alerts` JSON and the
//! `ALERTS{alertname,severity,state}` exposition series, plus the
//! `opad_build_info` provenance gauge.

use crate::prom::escape_label_value;
use opad_alert::{AlertState, AlertStatus};
use std::fmt::Write;

/// Renders `/alerts`: every rule's current lifecycle state, plus the
/// firing count a dashboard needs for its banner. Rule order (= install
/// order) is preserved, so consecutive reads of a quiet center are
/// byte-identical.
pub fn alerts_json(statuses: &[AlertStatus], firing: usize) -> String {
    let mut out = String::with_capacity(256);
    let _ = write!(out, "{{\"firing\":{firing},\"alerts\":[");
    for (i, s) in statuses.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"severity\":\"{}\",\"state\":\"{}\",\"since_ms\":{},\"condition\":{}",
            json_str(&s.name),
            s.severity,
            s.state.as_str(),
            fmt_json_f64(s.since_ms),
            json_str(&s.condition),
        );
        if let Some(v) = s.value {
            let _ = write!(out, ",\"value\":{}", fmt_json_f64(v));
        }
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

/// Renders the Prometheus-convention `ALERTS` series: one constant-1
/// sample per *active* (pending or firing) alert, labeled by name,
/// severity and state — the exact shape Prometheus itself synthesises
/// for its own rules, so existing alert dashboards work unchanged.
/// Inactive and resolved rules emit nothing, which is how the series
/// disappearing signals recovery.
pub fn render_alert_metrics(statuses: &[AlertStatus]) -> String {
    let active: Vec<&AlertStatus> = statuses
        .iter()
        .filter(|s| matches!(s.state, AlertState::Pending | AlertState::Firing))
        .collect();
    let mut out = String::with_capacity(256);
    let _ = writeln!(out, "# TYPE opad_alerts_firing gauge");
    let _ = writeln!(
        out,
        "opad_alerts_firing {}",
        active
            .iter()
            .filter(|s| s.state == AlertState::Firing)
            .count()
    );
    if active.is_empty() {
        return out;
    }
    let _ = writeln!(out, "# TYPE ALERTS gauge");
    for s in active {
        let _ = writeln!(
            out,
            "ALERTS{{alertname=\"{}\",severity=\"{}\",state=\"{}\"}} 1",
            escape_label_value(&s.name),
            s.severity,
            s.state.as_str()
        );
    }
    out
}

/// Renders the `opad_build_info` constant-1 gauge: build provenance as
/// labels (the standard `*_build_info` pattern), so every scrape is
/// joinable to the exact tree that produced it.
pub fn render_build_info(git_commit: &str) -> String {
    format!(
        "# TYPE opad_build_info gauge\nopad_build_info{{git_commit=\"{}\",version=\"{}\"}} 1\n",
        escape_label_value(git_commit),
        env!("CARGO_PKG_VERSION"),
    )
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

pub(crate) fn fmt_json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opad_alert::Severity;

    fn status(name: &str, state: AlertState) -> AlertStatus {
        AlertStatus {
            name: name.to_string(),
            severity: Severity::Critical,
            state,
            since_ms: 120.0,
            value: Some(0.21),
            condition: "gauge reliability.pfd_mean > 0.05".to_string(),
        }
    }

    #[test]
    fn alerts_json_carries_state_value_and_condition() {
        let body = alerts_json(&[status("breach", AlertState::Firing)], 1);
        assert!(body.starts_with("{\"firing\":1,\"alerts\":["), "{body}");
        assert!(body.contains("\"name\":\"breach\""), "{body}");
        assert!(body.contains("\"state\":\"firing\""), "{body}");
        assert!(body.contains("\"value\":0.21"), "{body}");
        assert!(
            body.contains("\"condition\":\"gauge reliability.pfd_mean > 0.05\""),
            "{body}"
        );
        assert!(opad_telemetry::parse_json(body.trim()).is_ok(), "{body}");
    }

    #[test]
    fn only_pending_and_firing_emit_alert_series() {
        let statuses = vec![
            status("quiet", AlertState::Inactive),
            status("warming", AlertState::Pending),
            status("live", AlertState::Firing),
            status("over", AlertState::Resolved),
        ];
        let out = render_alert_metrics(&statuses);
        assert!(out.contains("opad_alerts_firing 1"), "{out}");
        assert!(
            out.contains("ALERTS{alertname=\"warming\",severity=\"critical\",state=\"pending\"} 1"),
            "{out}"
        );
        assert!(
            out.contains("ALERTS{alertname=\"live\",severity=\"critical\",state=\"firing\"} 1"),
            "{out}"
        );
        assert!(!out.contains("quiet"), "{out}");
        assert!(!out.contains("over"), "{out}");
        // Nothing active → no ALERTS family at all, just the zero count.
        let quiet = render_alert_metrics(&[status("quiet", AlertState::Inactive)]);
        assert!(!quiet.contains("ALERTS{"), "{quiet}");
        assert!(quiet.contains("opad_alerts_firing 0"), "{quiet}");
    }

    #[test]
    fn build_info_is_a_labeled_constant_one() {
        let out = render_build_info("abc123-dirty");
        assert!(
            out.contains("opad_build_info{git_commit=\"abc123-dirty\",version=\""),
            "{out}"
        );
        assert!(out.trim_end().ends_with("\"} 1"), "{out}");
    }
}
