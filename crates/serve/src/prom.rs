//! Prometheus text exposition format v0.0.4 over a
//! [`LiveSnapshot`](opad_telemetry::LiveSnapshot).
//!
//! Rendering rules:
//!
//! * Metric names are sanitized to the spec charset
//!   `[a-zA-Z_:][a-zA-Z0-9_:]*`: the workspace's dotted names map dots
//!   (and any other illegal byte) to `_`, and everything is prefixed
//!   `opad_`. Counters additionally get the conventional `_total`
//!   suffix.
//! * Label values escape `\` as `\\`, `"` as `\"` and newline as `\n`,
//!   exactly the three escapes the exposition spec defines.
//! * Histograms render cumulative `_bucket{le="..."}` series over the
//!   fixed [`LE_BOUNDS_MS`] grid plus `le="+Inf"`, then `_sum` and
//!   `_count`. Cumulative counts come from
//!   [`FixedHistogram::cumulative_le`](opad_telemetry::FixedHistogram::cumulative_le),
//!   which is monotone by construction and exact at `+Inf`.
//! * Per-span wall-time rollups render as one shared family
//!   `opad_span_wall_ms` with a `span` label per name, so dashboards
//!   aggregate across spans without knowing the name set up front.

use crate::bench::BenchGauges;
use opad_telemetry::{FixedHistogram, LiveSnapshot};
use std::fmt::Write;

/// Content type a v0.0.4 exposition response must declare.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Upper bucket bounds (milliseconds) for histogram exposition, paired
/// with their exact rendered `le` strings so output is byte-stable.
const LE_BOUNDS_MS: &[(f64, &str)] = &[
    (0.01, "0.01"),
    (0.1, "0.1"),
    (1.0, "1"),
    (5.0, "5"),
    (10.0, "10"),
    (50.0, "50"),
    (100.0, "100"),
    (500.0, "500"),
    (1000.0, "1000"),
    (10000.0, "10000"),
];

/// Maps a workspace metric name onto the exposition charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`) and prefixes it `opad_`. Dots — the
/// workspace's namespace separator — and any other illegal character
/// become `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("opad_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition spec: `\` → `\\`, `"` →
/// `\"`, newline → `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn render_histogram(out: &mut String, family: &str, labels: &str, h: &FixedHistogram) {
    let sep = if labels.is_empty() { "" } else { "," };
    for (bound, le) in LE_BOUNDS_MS {
        let _ = writeln!(
            out,
            "{family}_bucket{{{labels}{sep}le=\"{le}\"}} {}",
            h.cumulative_le(*bound)
        );
    }
    let _ = writeln!(
        out,
        "{family}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
        h.count()
    );
    let braces = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    let _ = writeln!(out, "{family}_sum{braces} {}", fmt_value(h.sum()));
    let _ = writeln!(out, "{family}_count{braces} {}", h.count());
}

/// Renders a full v0.0.4 exposition document for `snap`.
///
/// Families appear in a fixed order (process meta, counters, gauges,
/// histograms, spans), each name-sorted by the snapshot, so consecutive
/// scrapes of an idle recorder are byte-identical.
pub fn render_metrics(snap: &LiveSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    let _ = writeln!(out, "# TYPE opad_uptime_ms gauge");
    let _ = writeln!(out, "opad_uptime_ms {}", fmt_value(snap.wall_ms));
    let _ = writeln!(out, "# TYPE opad_telemetry_events_total counter");
    let _ = writeln!(out, "opad_telemetry_events_total {}", snap.events);
    for (name, total) in &snap.counters {
        let family = format!("{}_total", sanitize_metric_name(name));
        let _ = writeln!(out, "# TYPE {family} counter");
        let _ = writeln!(out, "{family} {total}");
    }
    for (name, value) in &snap.gauges {
        let family = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {family} gauge");
        let _ = writeln!(out, "{family} {}", fmt_value(*value));
    }
    for (name, h) in &snap.histograms {
        let family = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {family} histogram");
        render_histogram(&mut out, &family, "", h);
    }
    if !snap.spans.is_empty() {
        let _ = writeln!(out, "# TYPE opad_span_wall_ms histogram");
        for (name, h) in &snap.spans {
            let labels = format!("span=\"{}\"", escape_label_value(name));
            render_histogram(&mut out, "opad_span_wall_ms", &labels, h);
        }
    }
    out
}

/// Renders the newest bench snapshot's per-kernel timings as labeled
/// gauges, appended to the `/metrics` document after the live families.
///
/// Per-kernel `p50_ns`/`min_ns` share two families with a `kernel` label
/// each (the same pattern as the span rollups), plus an unlabeled
/// `opad_bench_snapshot_seq` so dashboards can tell which snapshot the
/// numbers came from. Kernel order follows the snapshot, so consecutive
/// scrapes are byte-identical.
pub fn render_bench_metrics(g: &BenchGauges) -> String {
    let mut out = String::with_capacity(1024);
    let _ = writeln!(out, "# TYPE opad_bench_snapshot_seq gauge");
    let _ = writeln!(out, "opad_bench_snapshot_seq {}", g.seq);
    if g.kernels.is_empty() {
        return out;
    }
    let _ = writeln!(out, "# TYPE opad_bench_kernel_p50_ns gauge");
    for k in &g.kernels {
        let _ = writeln!(
            out,
            "opad_bench_kernel_p50_ns{{kernel=\"{}\"}} {}",
            escape_label_value(&k.name),
            fmt_value(k.p50_ns)
        );
    }
    let _ = writeln!(out, "# TYPE opad_bench_kernel_min_ns gauge");
    for k in &g.kernels {
        let _ = writeln!(
            out,
            "opad_bench_kernel_min_ns{{kernel=\"{}\"}} {}",
            escape_label_value(&k.name),
            fmt_value(k.min_ns)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_map_onto_the_spec_charset() {
        assert_eq!(
            sanitize_metric_name("pipeline.pfd_mean"),
            "opad_pipeline_pfd_mean"
        );
        assert_eq!(
            sanitize_metric_name("attack/pgd iters-to-success"),
            "opad_attack_pgd_iters_to_success"
        );
        assert_eq!(sanitize_metric_name("ok_name:sub"), "opad_ok_name:sub");
    }

    #[test]
    fn label_values_escape_exactly_the_three_spec_escapes() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("a\nb"), r"a\nb");
        assert_eq!(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
    }

    #[test]
    fn special_float_values_render_per_spec() {
        assert_eq!(fmt_value(f64::NAN), "NaN");
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_value(2.5), "2.5");
        assert_eq!(fmt_value(3.0), "3");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_capped_by_count() {
        let mut h = FixedHistogram::new();
        for v in [0.05, 0.5, 2.0, 7.0, 400.0] {
            h.record(v);
        }
        let mut out = String::new();
        render_histogram(&mut out, "opad_lat_ms", "", &h);
        let buckets: Vec<u64> = out
            .lines()
            .filter(|l| l.contains("_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(buckets.len(), LE_BOUNDS_MS.len() + 1);
        for w in buckets.windows(2) {
            assert!(w[0] <= w[1], "buckets must be cumulative: {buckets:?}");
        }
        assert_eq!(*buckets.last().unwrap(), 5, "+Inf bucket equals count");
        assert!(out.ends_with("opad_lat_ms_count 5\n"), "{out}");
    }
}
