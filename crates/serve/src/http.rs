//! Minimal HTTP/1.1 request reading and response writing.
//!
//! Only what a metrics endpoint needs: parse the request line and drain
//! the headers of a bodyless request, then write one `Connection: close`
//! response. Anything outside that envelope (bodies, chunked encoding,
//! keep-alive) is out of scope by design — scrapers send plain GETs.

use std::io::{self, Read, Write};

/// Hard cap on request head size; a scraper's GET fits in a fraction of
/// this, so anything larger is garbage or abuse.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed request line. Headers are read off the wire (to leave the
/// stream positioned past the request) but not retained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method, e.g. `GET`.
    pub method: String,
    /// The request target, e.g. `/metrics`.
    pub target: String,
}

/// Reads one request head (request line + headers, through the blank
/// line) and parses the request line.
///
/// Errors on malformed request lines, a head exceeding
/// [`MAX_HEAD_BYTES`], or a connection that closes mid-head.
pub fn read_request(stream: &mut impl Read) -> io::Result<Request> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    // Byte-at-a-time is fine here: requests are tiny and the stream is
    // already buffered by the kernel socket.
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
        match stream.read(&mut byte)? {
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-request",
                ))
            }
            _ => head.push(byte[0]),
        }
    }
    let head = String::from_utf8_lossy(&head);
    let request_line = head.lines().next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    match (parts.next(), parts.next(), parts.next()) {
        (Some(method), Some(target), Some(version)) if version.starts_with("HTTP/1") => {
            Ok(Request {
                method: method.to_string(),
                target: target.to_string(),
            })
        }
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed request line {request_line:?}"),
        )),
    }
}

/// Writes one complete `Connection: close` response.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_plain_get() {
        let mut wire: &[u8] = b"GET /metrics HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n";
        let req = read_request(&mut wire).expect("well-formed request parses");
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/metrics");
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        let mut wire: &[u8] = b"not http at all\r\n\r\n";
        assert!(read_request(&mut wire).is_err());
        let mut wire: &[u8] = b"GET /metrics HTTP/1.1\r\nHost:";
        let err = read_request(&mut wire).expect_err("truncated head errors");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn rejects_an_oversized_head() {
        let mut wire = b"GET / HTTP/1.1\r\n".to_vec();
        wire.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 1));
        let err = read_request(&mut wire.as_slice()).expect_err("oversized head errors");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn responses_carry_length_and_close() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", "text/plain", "hello\n").expect("write to Vec");
        let text = String::from_utf8(out).expect("ascii response");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 6\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nhello\n"), "{text}");
    }
}
