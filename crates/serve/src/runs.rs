//! `/runs`: a JSON listing of the run envelopes under `results/`.
//!
//! This is a deliberately shallow scan — filename, `experiment`,
//! `run_id`, `schema_version`, telemetry wall time and whether a sibling
//! trace exists — so the endpoint stays dependency-free (the full
//! envelope reader lives in `opad-obs`). Envelopes that fail to parse
//! are listed with an `error` field instead of being hidden: a dashboard
//! should see that an artefact is broken, not wonder where it went.

use opad_telemetry::parse_json;
use std::fmt::Write;
use std::path::Path;

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders the `/runs` JSON array for every `*.json` run envelope under
/// `dir` (skipping `BENCH_*` snapshots), filename-sorted. A missing or
/// unreadable directory renders as an empty array — the server may start
/// before the first round has written anything.
pub fn runs_json(dir: &Path) -> String {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.extension().and_then(|e| e.to_str()) == Some("json")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| !n.starts_with("BENCH_"))
        })
        .collect();
    paths.sort();
    let mut rows = Vec::with_capacity(paths.len());
    for path in paths {
        let file = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("?")
            .to_string();
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
        let has_trace = path.with_file_name(format!("{stem}_trace.jsonl")).exists();
        let row = std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| parse_json(&text).map_err(|e| e.to_string()))
            .map(|doc| {
                let experiment = doc
                    .get("experiment")
                    .and_then(|v| v.as_str())
                    .unwrap_or("?")
                    .to_string();
                let run_id = doc
                    .get("run_id")
                    .and_then(|v| v.as_str())
                    .unwrap_or("?")
                    .to_string();
                let version = doc
                    .get("schema_version")
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0);
                let wall = doc
                    .get("telemetry")
                    .and_then(|t| t.get("wall_ms"))
                    .and_then(|v| v.as_f64())
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "null".to_string());
                format!(
                    "{{\"file\":{},\"experiment\":{},\"run_id\":{},\"schema_version\":{version},\"wall_ms\":{wall},\"has_trace\":{has_trace}}}",
                    json_str(&file),
                    json_str(&experiment),
                    json_str(&run_id)
                )
            });
        rows.push(match row {
            Ok(row) => row,
            Err(e) => format!(
                "{{\"file\":{},\"error\":{}}}",
                json_str(&file),
                json_str(&e)
            ),
        });
    }
    format!("[{}]", rows.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("opad_serve_runs_test_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir is creatable");
        dir
    }

    #[test]
    fn lists_envelopes_with_trace_flags_and_surfaces_parse_errors() {
        let dir = fixture_dir("list");
        std::fs::write(
            dir.join("exp_a.json"),
            r#"{"schema_version":1,"experiment":"exp_a","run_id":"a-1",
               "telemetry":{"wall_ms":120.5}}"#,
        )
        .expect("fixture writes");
        std::fs::write(dir.join("exp_a_trace.jsonl"), "").expect("fixture writes");
        std::fs::write(dir.join("exp_b.json"), "{not json").expect("fixture writes");
        std::fs::write(dir.join("BENCH_0.json"), "{}").expect("fixture writes");
        let out = runs_json(&dir);
        let doc = parse_json(&out).expect("runs output is valid JSON");
        let rows = doc.as_arr().expect("array");
        assert_eq!(rows.len(), 2, "BENCH_ snapshots are skipped: {out}");
        assert_eq!(
            rows[0].get("experiment").and_then(|v| v.as_str()),
            Some("exp_a")
        );
        assert_eq!(rows[0].get("wall_ms").and_then(|v| v.as_f64()), Some(120.5));
        assert_eq!(
            rows[0].get("has_trace").and_then(|v| v.as_bool()),
            Some(true)
        );
        assert!(rows[1].get("error").is_some(), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_missing_directory_is_an_empty_list() {
        let dir = std::env::temp_dir().join("opad_serve_runs_test_absent");
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(runs_json(&dir), "[]");
    }
}
