//! The accept loop: bind, serve, shut down gracefully.

use crate::alerts::{alerts_json, fmt_json_f64, render_alert_metrics, render_build_info};
use crate::bench::load_latest_bench;
use crate::http::{read_request, write_response, Request};
use crate::prom::{render_bench_metrics, render_metrics, CONTENT_TYPE};
use crate::runs::runs_json;
use crate::timeseries::{query_json, timeseries_json};
use opad_alert::AlertCenter;
use opad_telemetry::{phase, LiveRecorder};
use opad_tsdb::TsdbStore;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the accept loop sleeps when no connection is pending. Also
/// bounds shutdown latency.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// How long a connected client gets to deliver its request before the
/// handler gives up on it (a stalled scraper must not wedge the loop).
const CLIENT_TIMEOUT: Duration = Duration::from_secs(2);

/// Where and what to serve.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (the bound address
    /// is on the returned handle).
    pub addr: String,
    /// Directory `/runs` scans for run envelopes.
    pub results_dir: PathBuf,
    /// Directory `/metrics` scans for the newest `BENCH_<seq>.json`
    /// snapshot, whose per-kernel timings are appended as gauges.
    pub bench_dir: PathBuf,
    /// Build provenance stamped into `/healthz` and the
    /// `opad_build_info` gauge — the same `git describe --always
    /// --dirty` convention as
    /// [`BenchProvenance`](opad_telemetry::BenchProvenance).
    /// `"unknown"` outside a checkout.
    pub git_commit: String,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:9184".to_string(),
            results_dir: PathBuf::from("results"),
            bench_dir: PathBuf::from("."),
            git_commit: "unknown".to_string(),
        }
    }
}

/// A not-yet-started metrics server: a [`LiveRecorder`] to expose and a
/// [`ServerConfig`] saying where. [`MetricsServer::spawn`] binds and
/// starts the background accept loop.
pub struct MetricsServer {
    recorder: Arc<LiveRecorder>,
    config: ServerConfig,
    center: Option<Arc<AlertCenter>>,
    tsdb: Option<Arc<TsdbStore>>,
}

impl MetricsServer {
    /// Pairs `recorder` with `config`; nothing is bound yet.
    pub fn new(recorder: Arc<LiveRecorder>, config: ServerConfig) -> MetricsServer {
        MetricsServer {
            recorder,
            config,
            center: None,
            tsdb: None,
        }
    }

    /// Attaches an [`AlertCenter`]: `/alerts` serves its rule states,
    /// `/metrics` gains the `ALERTS{...}` series, and `/healthz`
    /// degrades while any rule is firing. Wiring is explicit (no global
    /// lookup) so a server only reports alerts its owner opted into.
    pub fn alerts(mut self, center: Arc<AlertCenter>) -> MetricsServer {
        self.center = Some(center);
        self
    }

    /// Attaches a [`TsdbStore`] history plane: `/timeseries` serves its
    /// ring contents, `/query?expr=` evaluates window expressions over
    /// it, and `/healthz` gains a `sampler` liveness block (age of the
    /// newest sample; `status` degrades to `degraded` when the sampler
    /// has gone quiet for more than four expected intervals).
    pub fn timeseries(mut self, store: Arc<TsdbStore>) -> MetricsServer {
        self.tsdb = Some(store);
        self
    }

    /// Binds the listener and starts the accept loop on a background
    /// thread. Fails only on bind errors (port in use, bad address).
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&self.config.addr)?;
        let addr = listener.local_addr()?;
        // Non-blocking accept + poll sleep: the loop re-checks the stop
        // flag between connections, so shutdown never waits on a client.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let loop_stop = stop.clone();
        let thread = std::thread::Builder::new()
            .name("opad-serve".to_string())
            .spawn(move || {
                accept_loop(
                    listener,
                    self.recorder,
                    self.config,
                    self.center,
                    self.tsdb,
                    loop_stop,
                )
            })
            .expect("spawning the server thread");
        Ok(ServerHandle {
            addr,
            stop,
            thread: Some(thread),
        })
    }
}

/// Handle to a running server: its bound address and the graceful stop.
/// Dropping the handle also shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `addr` asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Any in-flight
    /// response finishes first; returns once the listener is closed.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: TcpListener,
    recorder: Arc<LiveRecorder>,
    config: ServerConfig,
    center: Option<Arc<AlertCenter>>,
    tsdb: Option<Arc<TsdbStore>>,
    stop: Arc<AtomicBool>,
) {
    // One connection at a time, by design: exposition responses are
    // small and cheap, so sequential handling bounds resource use at
    // exactly one handler regardless of how many scrapers connect —
    // excess connections queue in the kernel backlog.
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handle_connection(
                    stream,
                    &recorder,
                    &config,
                    center.as_deref(),
                    tsdb.as_deref(),
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            // Transient accept errors (e.g. a client that reset before
            // we got to it) don't kill the server.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    recorder: &LiveRecorder,
    config: &ServerConfig,
    center: Option<&AlertCenter>,
    tsdb: Option<&TsdbStore>,
) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(_) => {
            return write_response(
                &mut stream,
                400,
                "Bad Request",
                "text/plain",
                "bad request\n",
            )
        }
    };
    respond(&mut stream, &request, recorder, config, center, tsdb)
}

fn respond(
    stream: &mut TcpStream,
    request: &Request,
    recorder: &LiveRecorder,
    config: &ServerConfig,
    center: Option<&AlertCenter>,
    tsdb: Option<&TsdbStore>,
) -> io::Result<()> {
    if request.method != "GET" {
        return write_response(
            stream,
            405,
            "Method Not Allowed",
            "text/plain",
            "only GET is supported\n",
        );
    }
    // Split target into path and raw query. Non-history endpoints still
    // ignore the query (scrapers sometimes append cache busters); the
    // history endpoints parse it.
    let (path, query) = match request.target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (request.target.as_str(), ""),
    };
    match path {
        "/metrics" => {
            let mut body = render_metrics(&recorder.snapshot());
            body.push_str(&render_build_info(&config.git_commit));
            if let Some(gauges) = load_latest_bench(&config.bench_dir) {
                body.push_str(&render_bench_metrics(&gauges));
            }
            if let Some(center) = center {
                body.push_str(&render_alert_metrics(&center.statuses()));
            }
            write_response(stream, 200, "OK", CONTENT_TYPE, &body)
        }
        "/healthz" => {
            let round = recorder.gauge(phase::ROUND_GAUGE).unwrap_or(0.0) as u64;
            // Checked phase decode (shared with the watchdog rule): a
            // gauge outside the phase vocabulary renders `unknown(<n>)`
            // instead of silently truncating to some valid phase.
            let phase_label = phase::gauge_label(recorder.gauge(phase::PHASE_GAUGE).unwrap_or(0.0));
            let firing = center.map(AlertCenter::firing_count).unwrap_or(0);
            // Sampler liveness, when a history store is attached: the
            // age of the newest sample on the recorder's frame clock. A
            // sampler quiet for more than four expected intervals (or
            // one that never sampled at all) reads as stalled — the run
            // is then flying without history, which degrades health
            // just like a firing alert.
            let sampler = tsdb.map(|store| sampler_health(store, recorder.elapsed_ms()));
            let stale = sampler.as_ref().is_some_and(|s| s.stale);
            let status = if firing > 0 || stale {
                "degraded"
            } else {
                "ok"
            };
            let mut body = format!(
                "{{\"status\":\"{status}\",\"uptime_ms\":{:.0},\"round\":{round},\"phase\":\"{phase_label}\",\"git_commit\":\"{}\",\"version\":\"{}\",\"alerts_firing\":{firing}",
                recorder.elapsed_ms(),
                crate::prom::escape_label_value(&config.git_commit),
                env!("CARGO_PKG_VERSION"),
            );
            if let Some(s) = sampler {
                body.push_str(&format!(
                    ",\"sampler\":{{\"last_sample_ms\":{},\"age_ms\":{},\"stale\":{}}}",
                    s.last_sample_ms
                        .map_or_else(|| "null".to_string(), fmt_json_f64),
                    s.age_ms.map_or_else(|| "null".to_string(), fmt_json_f64),
                    s.stale,
                ));
            }
            body.push_str("}\n");
            write_response(stream, 200, "OK", "application/json", &body)
        }
        "/alerts" => {
            let body = match center {
                Some(center) => alerts_json(&center.statuses(), center.firing_count()),
                None => "{\"firing\":0,\"alerts\":[]}\n".to_string(),
            };
            write_response(stream, 200, "OK", "application/json", &body)
        }
        "/runs" => {
            let body = runs_json(&config.results_dir);
            write_response(stream, 200, "OK", "application/json", &body)
        }
        "/timeseries" => match tsdb {
            Some(store) => {
                let (code, body) = timeseries_json(store, query);
                write_response(stream, code, reason(code), "application/json", &body)
            }
            None => write_response(
                stream,
                404,
                "Not Found",
                "application/json",
                "{\"error\":\"no history store attached\"}\n",
            ),
        },
        "/query" => match tsdb {
            Some(store) => {
                let (code, body) = query_json(store, query);
                write_response(stream, code, reason(code), "application/json", &body)
            }
            None => write_response(
                stream,
                404,
                "Not Found",
                "application/json",
                "{\"error\":\"no history store attached\"}\n",
            ),
        },
        _ => write_response(stream, 404, "Not Found", "text/plain", "not found\n"),
    }
}

fn reason(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Error",
    }
}

struct SamplerHealth {
    last_sample_ms: Option<f64>,
    age_ms: Option<f64>,
    stale: bool,
}

fn sampler_health(store: &TsdbStore, now_ms: f64) -> SamplerHealth {
    match store.last_sample_ms() {
        Some(last) => {
            let age = (now_ms - last).max(0.0);
            let stale = store
                .expected_interval_ms()
                .is_some_and(|interval| age > 4.0 * interval);
            SamplerHealth {
                last_sample_ms: Some(last),
                age_ms: Some(age),
                stale,
            }
        }
        // Attached but never sampled: stalled from birth.
        None => SamplerHealth {
            last_sample_ms: None,
            age_ms: None,
            stale: true,
        },
    }
}
