//! End-to-end tests of the `obsctl` CLI over fixture artefacts.
//!
//! The trace fixture is captured through the real telemetry machinery
//! (spans recorded into a `TestSink`, then serialised line by line) so
//! the reader is exercised against exactly what the writer produces; the
//! envelope fixtures handcraft the numbers the regression gate compares.

use opad_obs::{run, CliEnv};
use opad_telemetry::{self as telemetry, BenchKernel, Event, MetricsRecorder, TestSink};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn test_env() -> CliEnv {
    CliEnv {
        kernels: Box::new(|| {
            vec![
                BenchKernel::new("fixture/spin", || {
                    std::hint::black_box((0..64).product::<u128>());
                }),
                BenchKernel::new("fixture/noop", || {}),
            ]
        }),
        run_id: Box::new(|| "fixture-run".to_string()),
    }
}

fn run_cli(args: &[&str]) -> (i32, String) {
    let args: Vec<String> = args.iter().map(ToString::to_string).collect();
    let mut out = Vec::new();
    let code = run(&args, test_env(), &mut out);
    (code, String::from_utf8(out).expect("CLI output is UTF-8"))
}

fn fixture_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("opad_obsctl_test_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir is creatable");
    dir
}

/// Serialises access to the process-global telemetry recorder across
/// parallel tests.
static RECORDER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs two rounds of nested spans through the real recorder + TestSink
/// and returns the captured events.
fn captured_round_events() -> Vec<Event> {
    let _guard = RECORDER_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let sink = Arc::new(TestSink::new());
    let recorder = Arc::new(MetricsRecorder::with_sink(sink.clone()));
    telemetry::install(recorder);
    for _ in 0..2 {
        let _round = telemetry::span("round");
        for step in ["sample_seeds", "fuzz", "evaluate", "assess", "retrain"] {
            let _step = match step {
                "sample_seeds" => telemetry::span("sample_seeds"),
                "fuzz" => telemetry::span("fuzz"),
                "evaluate" => telemetry::span("evaluate"),
                "assess" => telemetry::span("assess"),
                _ => telemetry::span("retrain"),
            };
            std::hint::black_box((0..500).sum::<u64>());
        }
    }
    telemetry::uninstall();
    sink.events()
}

fn write_run(dir: &Path, exp: &str, wall_ms: f64, seeds: u64, p50: f64, with_trace: bool) {
    let doc = format!(
        r#"{{
  "schema_version": 1,
  "experiment": "{exp}",
  "run_id": "{exp}-id",
  "config": {{"budget": 100}},
  "telemetry": {{
    "wall_ms": {wall_ms},
    "events": 120,
    "events_per_sec": 100.0,
    "counters": {{"pipeline.aes_found": {aes}, "pipeline.seeds_attacked": {seeds}}},
    "gauges": {{"pipeline.pfd_mean": 0.012}},
    "histograms": [{{"name": "attack.pgd.iters_to_success", "count": {aes},
      "min": 1.0, "max": 15.0, "mean": {p50}, "p50": {p50},
      "p90": {p90}, "p99": {p99}}}],
    "spans": [{{"name": "round", "count": 2, "total_ms": {wall_ms},
      "min_ms": 1.0, "p50_ms": 2.0, "p90_ms": 3.0, "p99_ms": 3.0, "max_ms": 3.0}}]
  }},
  "rows": [1, 2, 3]
}}
"#,
        aes = seeds / 4,
        p90 = p50 * 2.0,
        p99 = p50 * 3.0,
    );
    std::fs::write(dir.join(format!("{exp}.json")), doc).expect("envelope fixture writes");
    if with_trace {
        let mut text = String::new();
        for e in captured_round_events() {
            text.push_str(&e.to_json());
            text.push('\n');
        }
        std::fs::write(dir.join(format!("{exp}_trace.jsonl")), text).expect("trace fixture writes");
    }
}

#[test]
fn summary_prints_the_span_tree_budget_and_sections() {
    let dir = fixture_dir("summary");
    write_run(&dir, "exp_sum", 800.0, 400, 5.0, true);
    let path = dir.join("exp_sum.json");
    let (code, out) = run_cli(&["summary", path.to_str().expect("utf8 path")]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("experiment exp_sum"), "{out}");
    assert!(out.contains("section rows: 3 rows"), "{out}");
    assert!(out.contains("span tree"), "{out}");
    for step in [
        "round",
        "sample_seeds",
        "fuzz",
        "evaluate",
        "assess",
        "retrain",
    ] {
        assert!(out.contains(step), "missing {step} in:\n{out}");
    }
    assert!(out.contains("critical path: round ("), "{out}");
    assert!(out.contains("budget breakdown over 2 round(s)"), "{out}");
    assert!(out.contains("(round overhead)"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn summary_still_works_without_a_trace_file() {
    let dir = fixture_dir("summary_notrace");
    write_run(&dir, "exp_plain", 800.0, 400, 5.0, false);
    let (code, out) = run_cli(&[
        "summary",
        dir.join("exp_plain.json").to_str().expect("utf8 path"),
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("no "), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn diff_exits_nonzero_on_an_injected_wall_regression() {
    let dir = fixture_dir("diff");
    // Candidate is 50% slower on the wall — far past the 20% default.
    write_run(&dir, "exp_base", 1000.0, 400, 5.0, false);
    write_run(&dir, "exp_slow", 1500.0, 400, 5.0, false);
    let base = dir.join("exp_base.json");
    let slow = dir.join("exp_slow.json");
    let (code, out) = run_cli(&[
        "diff",
        base.to_str().expect("utf8"),
        slow.to_str().expect("utf8"),
    ]);
    assert_eq!(code, 1, "a 50% slowdown must trip the gate:\n{out}");
    assert!(out.contains("overall: REGRESSION"), "{out}");
    assert!(out.contains("wall_ms"), "{out}");

    // Identical runs pass...
    let (code, out) = run_cli(&[
        "diff",
        base.to_str().expect("utf8"),
        base.to_str().expect("utf8"),
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("overall: clean"), "{out}");

    // ...and a loosened threshold lets the slow run through too.
    let (code, out) = run_cli(&[
        "diff",
        base.to_str().expect("utf8"),
        slow.to_str().expect("utf8"),
        "--threshold",
        "0.6",
    ]);
    assert_eq!(code, 0, "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn diff_also_catches_throughput_regressions() {
    let dir = fixture_dir("diff_thru");
    // Same wall clock, but the candidate attacks 40% fewer seeds/s.
    write_run(&dir, "exp_fast", 1000.0, 500, 5.0, false);
    write_run(&dir, "exp_lame", 1000.0, 300, 5.0, false);
    let (code, out) = run_cli(&[
        "diff",
        dir.join("exp_fast.json").to_str().expect("utf8"),
        dir.join("exp_lame.json").to_str().expect("utf8"),
    ]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("seeds_per_sec"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_writes_a_sequenced_snapshot_and_selfcheck_validates_everything() {
    let dir = fixture_dir("bench");
    let results = dir.join("results");
    std::fs::create_dir_all(&results).expect("results dir is creatable");
    write_run(&results, "exp_ok", 500.0, 100, 4.0, true);

    let (code, out) = run_cli(&[
        "bench",
        "--iters",
        "10",
        "--warmup",
        "1",
        "--out",
        dir.to_str().expect("utf8"),
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("fixture/spin"), "{out}");
    // The series is 1-based and zero-padded on write.
    assert!(dir.join("BENCH_0001.json").exists());

    // Second run advances the sequence.
    let (code, _) = run_cli(&[
        "bench",
        "--iters",
        "5",
        "--out",
        dir.to_str().expect("utf8"),
    ]);
    assert_eq!(code, 0);
    assert!(dir.join("BENCH_0002.json").exists());

    // Filtering trims the kernel set.
    let (code, out) = run_cli(&[
        "bench",
        "--iters",
        "5",
        "--filter",
        "noop",
        "--out",
        dir.to_str().expect("utf8"),
    ]);
    assert_eq!(code, 0);
    assert!(!out.contains("fixture/spin"), "{out}");

    let (code, out) = run_cli(&[
        "selfcheck",
        results.to_str().expect("utf8"),
        dir.to_str().expect("utf8"),
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("0 errors"), "{out}");

    // Corrupt one envelope: selfcheck must now fail.
    std::fs::write(results.join("exp_bad.json"), "{\"schema_version\": 99}")
        .expect("fixture writes");
    let (code, out) = run_cli(&[
        "selfcheck",
        results.to_str().expect("utf8"),
        dir.to_str().expect("utf8"),
    ]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("exp_bad.json"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn summary_handles_an_empty_trace_without_panicking() {
    let dir = fixture_dir("summary_empty_trace");
    write_run(&dir, "exp_empty", 800.0, 400, 5.0, false);
    // A trace file that exists but recorded nothing (run died before the
    // first event flushed).
    std::fs::write(dir.join("exp_empty_trace.jsonl"), "").expect("trace fixture writes");
    let (code, out) = run_cli(&[
        "summary",
        dir.join("exp_empty.json").to_str().expect("utf8 path"),
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("spans: none completed in trace"), "{out}");
    assert!(
        !out.contains("budget breakdown"),
        "no rounds to break down:\n{out}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn summary_handles_a_root_span_that_never_closes() {
    let dir = fixture_dir("summary_open_root");
    write_run(&dir, "exp_open", 800.0, 400, 5.0, false);
    // Truncated trace: the root `round` span opened (and a child closed)
    // but the run died before the root's end event. The child must still
    // be attributed under its parent and nothing may panic.
    let events = vec![
        Event::SpanStart {
            id: 1,
            parent: None,
            name: "round".to_string(),
            t_ms: 0.0,
        },
        Event::SpanStart {
            id: 2,
            parent: Some(1),
            name: "fuzz".to_string(),
            t_ms: 1.0,
        },
        Event::SpanEnd {
            id: 2,
            parent: Some(1),
            name: "fuzz".to_string(),
            t_ms: 61.0,
            wall_ms: 60.0,
        },
    ];
    let mut text = String::new();
    for e in &events {
        text.push_str(&e.to_json());
        text.push('\n');
    }
    std::fs::write(dir.join("exp_open_trace.jsonl"), text).expect("trace fixture writes");
    let (code, out) = run_cli(&[
        "summary",
        dir.join("exp_open.json").to_str().expect("utf8 path"),
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("span tree"), "{out}");
    assert!(out.contains("fuzz"), "{out}");
    // The unclosed root contributes no wall time but still anchors its
    // children; zero completed rounds must not divide by zero.
    assert!(out.contains("budget breakdown over 0 round(s)"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn diff_reports_missing_metrics_as_na_instead_of_panicking() {
    let dir = fixture_dir("diff_missing_metric");
    write_run(&dir, "exp_full", 1000.0, 400, 5.0, false);
    // A legal envelope whose telemetry recorded no histograms, counters
    // or spans — every derived metric on this side is missing.
    let bare = r#"{
  "schema_version": 1,
  "experiment": "exp_bare",
  "run_id": "exp_bare-id",
  "config": {"budget": 100},
  "telemetry": {
    "wall_ms": 1000.0,
    "events": 2,
    "events_per_sec": 2.0,
    "counters": {},
    "gauges": {},
    "histograms": [],
    "spans": []
  }
}
"#;
    std::fs::write(dir.join("exp_bare.json"), bare).expect("envelope fixture writes");
    let (code, out) = run_cli(&[
        "diff",
        dir.join("exp_full.json").to_str().expect("utf8"),
        dir.join("exp_bare.json").to_str().expect("utf8"),
    ]);
    // Missing metrics are marked n/a and never count as regressions.
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("n/a"), "{out}");
    assert!(out.contains("iters_to_success_p50"), "{out}");
    assert!(out.contains("overall: clean"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn summary_json_emits_a_parseable_rollup() {
    let dir = fixture_dir("summary_json");
    write_run(&dir, "exp_json", 800.0, 400, 5.0, true);
    let (code, out) = run_cli(&[
        "summary",
        dir.join("exp_json.json").to_str().expect("utf8 path"),
        "--json",
    ]);
    assert_eq!(code, 0, "{out}");
    let doc = opad_telemetry::parse_json(out.trim()).expect("summary --json is valid JSON");
    assert_eq!(
        doc.get("experiment").and_then(|v| v.as_str()),
        Some("exp_json")
    );
    assert_eq!(
        doc.get("run_id").and_then(|v| v.as_str()),
        Some("exp_json-id")
    );
    let spans = doc
        .get("spans")
        .and_then(|v| v.as_arr())
        .expect("spans array");
    let round = spans
        .iter()
        .find(|s| s.get("path").and_then(|v| v.as_str()) == Some("round"))
        .expect("round span present");
    assert_eq!(round.get("count").and_then(|v| v.as_u64()), Some(2));
    assert!(spans
        .iter()
        .any(|s| s.get("path").and_then(|v| v.as_str()) == Some("round;fuzz")));
    let cp = doc
        .get("critical_path")
        .and_then(|v| v.as_arr())
        .expect("critical path array");
    assert_eq!(cp[0].get("name").and_then(|v| v.as_str()), Some("round"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Parses `stack value` collapsed lines into (stack, µs) pairs.
fn parse_collapsed(out: &str) -> Vec<(String, u64)> {
    out.lines()
        .map(|l| {
            let (stack, v) = l.rsplit_once(' ').expect("stack SPACE value");
            (stack.to_string(), v.parse().expect("integer µs"))
        })
        .collect()
}

#[test]
fn flame_self_stacks_sum_to_the_root_duration() {
    let dir = fixture_dir("flame");
    write_run(&dir, "exp_flame", 800.0, 400, 5.0, true);
    let envelope = dir.join("exp_flame.json");
    let (code, out) = run_cli(&["flame", envelope.to_str().expect("utf8 path")]);
    assert_eq!(code, 0, "{out}");
    let lines = parse_collapsed(&out);
    assert!(!lines.is_empty(), "{out}");
    assert!(
        lines.iter().any(|(s, _)| s == "round;fuzz"),
        "nested stack missing:\n{out}"
    );
    let self_total: u64 = lines.iter().map(|(_, v)| v).sum();
    // --total on the same trace reports the root's inclusive duration;
    // the disjoint self times must partition it within per-line rounding.
    let (code, out_total) = run_cli(&["flame", envelope.to_str().expect("utf8 path"), "--total"]);
    assert_eq!(code, 0, "{out_total}");
    let totals = parse_collapsed(&out_total);
    let root_total: u64 = totals
        .iter()
        .filter(|(s, _)| s == "round")
        .map(|(_, v)| *v)
        .sum();
    let tolerance = lines.len() as u64 + 1;
    assert!(
        self_total.abs_diff(root_total) <= tolerance,
        "self sum {self_total} µs vs root total {root_total} µs (tolerance {tolerance})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flame_accepts_a_raw_trace_path_and_rejects_missing_files() {
    let dir = fixture_dir("flame_raw");
    write_run(&dir, "exp_raw", 800.0, 400, 5.0, true);
    let trace = dir.join("exp_raw_trace.jsonl");
    let (code, out) = run_cli(&["flame", trace.to_str().expect("utf8 path"), "--self"]);
    assert_eq!(code, 0, "{out}");
    assert!(!out.trim().is_empty());
    let (code, out) = run_cli(&["flame", dir.join("nope.jsonl").to_str().expect("utf8")]);
    assert_eq!(code, 2, "{out}");
    assert!(out.contains("error"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Writes a synthetic schema-v2 bench snapshot with controlled per-kernel
/// `min_ns` values, so the gate tests can inject exact regressions.
fn write_bench_snapshot(dir: &Path, file: &str, seq: u32, kernels: &[(&str, f64)]) {
    let rows: Vec<String> = kernels
        .iter()
        .map(|(name, min_ns)| {
            format!(
                r#"{{"name": "{name}", "iters": 30, "samples": 30, "mean_ns": {m}, "min_ns": {min_ns}, "p50_ns": {m}, "p90_ns": {p90}, "p99_ns": {p99}, "max_ns": {p99}}}"#,
                m = min_ns * 1.1,
                p90 = min_ns * 1.3,
                p99 = min_ns * 1.5,
            )
        })
        .collect();
    let doc = format!(
        r#"{{"schema_version": 2, "seq": {seq}, "run_id": "run-{seq}", "warmup_iters": 3, "iters": 30,
  "provenance": {{"git_commit": "fix{seq}", "cores": 8, "opad_threads": null}},
  "kernels": [{}]}}"#,
        rows.join(", ")
    );
    std::fs::write(dir.join(file), doc).expect("bench fixture writes");
}

#[test]
fn perf_gate_catches_a_synthetic_regression_and_passes_baseline_vs_self() {
    let dir = fixture_dir("perf_gate");
    // fixture/spin doubles from 1 ms to 2 ms — past the 25% relative
    // threshold and the 10 µs absolute floor; fixture/noop is unchanged.
    write_bench_snapshot(
        &dir,
        "BENCH_0001.json",
        1,
        &[("fixture/spin", 1.0e6), ("fixture/noop", 5.0e5)],
    );
    write_bench_snapshot(
        &dir,
        "BENCH_0002.json",
        2,
        &[("fixture/spin", 2.0e6), ("fixture/noop", 5.0e5)],
    );
    let (code, out) = run_cli(&["perf", "gate", dir.to_str().expect("utf8")]);
    assert_eq!(code, 1, "a 2x slowdown must trip the gate:\n{out}");
    assert!(out.contains("REGRESSED"), "{out}");
    assert!(out.contains("overall: REGRESSION"), "{out}");

    // The baseline against itself is clean.
    let base = dir.join("BENCH_0001.json");
    let (code, out) = run_cli(&[
        "perf",
        "gate",
        base.to_str().expect("utf8"),
        base.to_str().expect("utf8"),
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("overall: clean"), "{out}");

    // A loosened relative threshold lets the slow candidate through.
    let (code, out) = run_cli(&["perf", "gate", dir.to_str().expect("utf8"), "--rel", "1.5"]);
    assert_eq!(code, 0, "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn perf_gate_skips_with_a_notice_when_only_the_baseline_exists() {
    let dir = fixture_dir("perf_gate_single");
    write_bench_snapshot(&dir, "BENCH_0001.json", 1, &[("fixture/spin", 1.0e6)]);
    let (code, out) = run_cli(&["perf", "gate", dir.to_str().expect("utf8")]);
    assert_eq!(code, 0, "a lone baseline must not fail CI:\n{out}");
    assert!(out.contains("skipped"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn perf_gate_reports_missing_and_new_kernels_without_failing() {
    let dir = fixture_dir("perf_gate_missing");
    write_bench_snapshot(
        &dir,
        "BENCH_0001.json",
        1,
        &[("fixture/spin", 1.0e6), ("fixture/gone", 2.0e6)],
    );
    write_bench_snapshot(
        &dir,
        "BENCH_0002.json",
        2,
        &[("fixture/spin", 1.0e6), ("fixture/fresh", 3.0e6)],
    );
    let (code, out) = run_cli(&["perf", "gate", dir.to_str().expect("utf8")]);
    assert_eq!(code, 0, "kernel-set churn alone must not regress:\n{out}");
    assert!(out.contains("missing"), "{out}");
    assert!(out.contains("new"), "{out}");
    assert!(out.contains("overall: clean"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn perf_history_and_reports_render_the_series() {
    let dir = fixture_dir("perf_history");
    // Mixed filename forms: an unpadded v1-era name plus a padded one.
    write_bench_snapshot(&dir, "BENCH_1.json", 1, &[("fixture/spin", 1.0e6)]);
    write_bench_snapshot(
        &dir,
        "BENCH_0002.json",
        2,
        &[("fixture/spin", 1.2e6), ("fixture/fresh", 3.0e6)],
    );
    let (code, out) = run_cli(&["perf", "history", dir.to_str().expect("utf8")]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("2 snapshot(s)"), "{out}");
    assert!(out.contains("fixture/spin"), "{out}");
    assert!(out.contains("commit fix2"), "{out}");

    let (code, out) = run_cli(&["perf", "report", dir.to_str().expect("utf8"), "--md"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("| kernel |"), "{out}");
    assert!(out.contains("fixture/spin"), "{out}");

    let (code, out) = run_cli(&["perf", "report", dir.to_str().expect("utf8"), "--json"]);
    assert_eq!(code, 0, "{out}");
    let doc = opad_telemetry::parse_json(out.trim()).expect("perf report --json is valid JSON");
    let kernels = doc
        .get("kernels")
        .and_then(|v| v.as_arr())
        .expect("kernels array");
    assert!(
        kernels
            .iter()
            .any(|k| k.get("name").and_then(|v| v.as_str()) == Some("fixture/spin")),
        "{out}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn list_discovers_every_envelope_uniformly() {
    let dir = fixture_dir("list");
    write_run(&dir, "exp_one", 100.0, 40, 3.0, true);
    write_run(&dir, "exp_two", 200.0, 80, 4.0, false);
    let (code, out) = run_cli(&["list", dir.to_str().expect("utf8")]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("exp_one"), "{out}");
    assert!(out.contains("exp_two"), "{out}");
    assert!(out.contains("rows"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The committed replay fixture: a short recorded run in which the pfd
/// estimate breaches its bound, sustains, and recovers, while the fuzz
/// and seed counters keep moving.
fn alerts_fixture() -> &'static str {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/alerts_replay.jsonl"
    )
}

/// Writes the default rule pack (the same text shipped as
/// `rules/default.alerts`) into `dir`.
fn write_default_pack(dir: &Path) -> PathBuf {
    let path = dir.join("default.alerts");
    std::fs::write(&path, opad_alert::default_pack_text(0.05, -25.0)).expect("pack writes");
    path
}

#[test]
fn alerts_check_validates_the_default_pack() {
    let dir = fixture_dir("alerts_check");
    let pack = write_default_pack(&dir);
    let (code, out) = run_cli(&["alerts", "check", pack.to_str().expect("utf8")]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("5 rule(s) ok"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn alerts_check_rejects_unknown_metrics_and_bad_grammar() {
    let dir = fixture_dir("alerts_check_bad");
    // A typo'd metric name parses but fails the vocabulary check.
    let typo = dir.join("typo.alerts");
    std::fs::write(
        &typo,
        "alert breach when gauge reliability.pfd_meen > 0.05\n",
    )
    .expect("writes");
    let (code, out) = run_cli(&["alerts", "check", typo.to_str().expect("utf8")]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("pfd_meen"), "{out}");
    // A grammar error names its line.
    let broken = dir.join("broken.alerts");
    std::fs::write(&broken, "alert broken when gauge\n").expect("writes");
    let (code, out) = run_cli(&["alerts", "check", broken.to_str().expect("utf8")]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains(":1:"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn alerts_replay_reproduces_the_exact_lifecycle_transcript() {
    let dir = fixture_dir("alerts_replay");
    let pack = write_default_pack(&dir);
    let (code, out) = run_cli(&[
        "alerts",
        "replay",
        pack.to_str().expect("utf8"),
        alerts_fixture(),
        "--expect",
        "pfd_bound_breach=resolved,fuzz_dead=inactive,seeds_stalled=inactive,naturalness_drift=inactive,stuck_phase=inactive",
    ]);
    assert_eq!(code, 0, "{out}");
    // The exact transition sequence, in order: the breach walks the full
    // inactive → pending → firing → resolved lifecycle and nothing else
    // transitions at all.
    let transitions: Vec<&str> = out
        .lines()
        .filter(|l| l.contains("->"))
        .map(str::trim)
        .collect();
    assert_eq!(transitions.len(), 3, "{out}");
    assert!(
        transitions[0].contains("pfd_bound_breach")
            && transitions[0].contains("inactive -> pending"),
        "{out}"
    );
    assert!(transitions[1].contains("pending -> firing"), "{out}");
    assert!(transitions[2].contains("firing -> resolved"), "{out}");
    assert!(out.contains("all 5 expectation(s) hold"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn alerts_replay_gates_on_failed_expectations() {
    let dir = fixture_dir("alerts_replay_gate");
    let pack = write_default_pack(&dir);
    let (code, out) = run_cli(&[
        "alerts",
        "replay",
        pack.to_str().expect("utf8"),
        alerts_fixture(),
        "--expect",
        "pfd_bound_breach=inactive",
    ]);
    assert_eq!(code, 1, "a wrong final state must fail the gate:\n{out}");
    assert!(
        out.contains("FAIL: pfd_bound_breach ended resolved"),
        "{out}"
    );
    // Naming a rule the pack doesn't define is a usage error, not a
    // silently-passing gate.
    let (code, out) = run_cli(&[
        "alerts",
        "replay",
        pack.to_str().expect("utf8"),
        alerts_fixture(),
        "--expect",
        "no_such_rule=firing",
    ]);
    assert_eq!(code, 2, "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn alerts_replay_evaluates_an_envelope_as_a_final_frame() {
    let dir = fixture_dir("alerts_envelope");
    // The fixture run ends with pfd_mean 0.012 — under the bound.
    write_run(&dir, "exp_done", 800.0, 400, 5.0, false);
    let rules = dir.join("pfd.alerts");
    std::fs::write(
        &rules,
        "alert breach when gauge pipeline.pfd_mean > 0.05\nalert hot when gauge pipeline.pfd_mean > 0.01\n",
    )
    .expect("writes");
    let envelope = dir.join("exp_done.json");
    let (code, out) = run_cli(&[
        "alerts",
        "replay",
        rules.to_str().expect("utf8"),
        envelope.to_str().expect("utf8"),
        "--expect",
        "breach=inactive,hot=firing",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("as one final frame"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The shipped history pack: windowed conditions over tsdb rings.
fn history_pack() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../rules/history.alerts")
}

/// The committed history-replay fixture: seeds ramp 40/s for 2s then
/// flatline for 11s while the pfd gauge decays gently under its bound.
fn history_fixture() -> &'static str {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/history_replay.jsonl"
    )
}

#[test]
fn alerts_check_validates_the_history_pack() {
    let (code, out) = run_cli(&["alerts", "check", history_pack()]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("4 rule(s) ok"), "{out}");
}

#[test]
fn history_pack_replays_the_windowed_stall_to_firing() {
    let args = [
        "alerts",
        "replay",
        history_pack(),
        history_fixture(),
        "--expect",
        "seed_rate_stall=firing,pfd_spiked=inactive,pfd_estimate_noisy=inactive,history_stalled=inactive",
    ];
    let (code, out) = run_cli(&args);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("all 4 expectation(s) hold"), "{out}");
    // The stall's lifecycle lands exactly where the window arithmetic
    // says: pending once the 10s rate window goes flat (t=12000),
    // firing after the 1s hold (t=13000) — and nothing else moves.
    let transitions: Vec<&str> = out
        .lines()
        .filter(|l| l.contains("->"))
        .map(str::trim)
        .collect();
    assert_eq!(transitions.len(), 2, "{out}");
    assert!(
        transitions[0].contains("seed_rate_stall")
            && transitions[0].contains("inactive -> pending"),
        "{out}"
    );
    assert!(transitions[1].contains("pending -> firing"), "{out}");
    // Bit-deterministic: a second replay produces the same bytes.
    let (code_b, out_b) = run_cli(&args);
    assert_eq!((code, out), (code_b, out_b));
}

/// The committed watch fixture: a seeds counter ramping 40/s then
/// flatlining while the pfd gauge decays linearly.
fn watch_fixture() -> &'static str {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/tsdb_watch.jsonl"
    )
}

#[test]
fn watch_once_matches_the_golden_file() {
    let (code, out) = run_cli(&["watch", watch_fixture(), "--once"]);
    assert_eq!(code, 0, "{out}");
    let golden = include_str!("golden/watch_once.txt");
    assert_eq!(
        out, golden,
        "watch rendering drifted from tests/golden/watch_once.txt — if the \
         change is intentional, regenerate the golden file from this output"
    );
}

#[test]
fn watch_filters_series_and_applies_windows() {
    let (code, out) = run_cli(&[
        "watch",
        watch_fixture(),
        "--series",
        "reliability.pfd_mean",
        "--window",
        "1s",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("1 series"), "{out}");
    assert!(out.contains("reliability.pfd_mean"), "{out}");
    assert!(!out.contains("pipeline.seeds_attacked"), "{out}");
}

#[test]
fn watch_usage_errors_are_reported() {
    let (code, out) = run_cli(&["watch"]);
    assert_eq!(code, 2, "{out}");
    assert!(out.contains("usage:"), "{out}");
    let (code, out) = run_cli(&["watch", watch_fixture(), "--window", "soon"]);
    assert_eq!(code, 2, "{out}");
    assert!(out.contains("bad --window"), "{out}");
    let (code, out) = run_cli(&["watch", "/no/such/stream.jsonl", "--once"]);
    assert_eq!(code, 2, "{out}");
}

#[test]
fn series_export_round_trips_through_the_store() {
    let dir = fixture_dir("series_export");
    let out_path = dir.join("exported.jsonl");
    let (code, out) = run_cli(&[
        "series",
        "export",
        watch_fixture(),
        "--out",
        out_path.to_str().expect("utf8"),
    ]);
    assert_eq!(code, 0, "{out}");
    let exported = std::fs::read_to_string(&out_path).expect("export written");
    assert!(
        exported.contains("\"name\":\"pipeline.seeds_attacked\""),
        "{exported}"
    );
    // The exported stream replays into an identical export: fixed point.
    let (code, stdout) = run_cli(&["series", "export", out_path.to_str().expect("utf8")]);
    assert_eq!(code, 0, "{stdout}");
    assert_eq!(stdout, exported, "export→load→export must be stable");
    // And the exported stream renders identically to the original.
    let (_, watch_a) = run_cli(&["watch", watch_fixture(), "--once"]);
    let (_, watch_b) = run_cli(&["watch", out_path.to_str().expect("utf8"), "--once"]);
    assert_eq!(watch_a, watch_b);
    let _ = std::fs::remove_dir_all(&dir);
}
