//! `obsctl` — trace analytics, run diffing and micro-benchmarks over the
//! artefacts in `results/`. All logic lives in `opad_obs`; this binary
//! only wires in a kernel registry and the git run id.
//!
//! With the default `bench-registry` feature the registry is the whole
//! workspace (`opad_bench::all_bench_kernels`). Built with
//! `--no-default-features` — e.g. in minimal environments where the
//! rand/serde-dependent kernel crates cannot compile — the binary still
//! works end to end, benchmarking the std-only `opad-par` and
//! `opad-telemetry` registries only.

use opad_obs::CliEnv;
use opad_telemetry::BenchKernel;

#[cfg(feature = "bench-registry")]
fn kernels() -> Vec<BenchKernel> {
    opad_bench::all_bench_kernels()
}

#[cfg(not(feature = "bench-registry"))]
fn kernels() -> Vec<BenchKernel> {
    use opad_telemetry::{Benchmarkable, TelemetryBenches};
    let mut kernels = opad_par::ParBenches::bench_kernels();
    kernels.extend(TelemetryBenches::bench_kernels());
    kernels.extend(opad_tsdb::TsdbBenches::bench_kernels());
    kernels
}

#[cfg(feature = "bench-registry")]
fn run_id() -> String {
    opad_bench::run_id()
}

/// The same `git describe --always --dirty` convention as
/// `opad_bench::run_id`, inlined so the std-only build needs no extra
/// crate.
#[cfg(not(feature = "bench-registry"))]
fn run_id() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let env = CliEnv {
        kernels: Box::new(kernels),
        run_id: Box::new(run_id),
    };
    let code = opad_obs::run(&args, env, &mut std::io::stdout());
    std::process::exit(code);
}
