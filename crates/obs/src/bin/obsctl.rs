//! `obsctl` — trace analytics, run diffing and micro-benchmarks over the
//! artefacts in `results/`. All logic lives in `opad_obs`; this binary
//! only wires in the workspace kernel registry and the git run id.

use opad_obs::CliEnv;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let env = CliEnv {
        kernels: Box::new(opad_bench::all_bench_kernels),
        run_id: Box::new(opad_bench::run_id),
    };
    let code = opad_obs::run(&args, env, &mut std::io::stdout());
    std::process::exit(code);
}
