//! # opad-obs
//!
//! Trace analytics and performance-regression tooling over the artefacts
//! the experiment binaries leave behind (`results/<exp>.json` envelopes
//! and `results/<exp>_trace.jsonl` span streams).
//!
//! The `obsctl` binary is the front door:
//!
//! * `obsctl summary <envelope.json>` — per-run rollup: wall-time tree
//!   with self/child attribution, the critical path, the per-step budget
//!   breakdown of the paper's Fig. 1 loop (sample/fuzz/evaluate/assess/
//!   retrain), and counter/gauge/histogram summaries; `--json` emits the
//!   same rollup machine-readably for CI and `opad-serve`;
//! * `obsctl flame <envelope.json|trace.jsonl>` — collapsed-stack export
//!   of the span tree (`round;fuzz;attack/pgd 40000`, values in µs) for
//!   any flamegraph renderer, with `--self`/`--total` attribution;
//! * `obsctl diff <a.json> <b.json>` — regression report between two runs
//!   (wall clock, iterations-to-success quantiles, seeds and AEs per
//!   second, rounds), exiting non-zero when any metric regresses past the
//!   threshold — the CI trajectory gate;
//! * `obsctl bench` — micro-benchmark harness over every crate's
//!   [`opad_telemetry::Benchmarkable`] registry, writing a
//!   schema-versioned `BENCH_<seq>.json` snapshot with provenance (git
//!   commit, core count, `OPAD_THREADS`);
//! * `obsctl perf history` / `gate` / `report` — the perf-trajectory
//!   subsystem over the whole `BENCH_<seq>.json` series: per-kernel
//!   trends, a variance-aware regression gate (robust min-of-N compared
//!   under a relative threshold plus an absolute-ns floor, sample-size
//!   scaled; non-zero exit on regression), and JSON/markdown trajectory
//!   reports for CI;
//! * `obsctl alerts check` / `alerts replay` — the offline faces of the
//!   `opad-alert` plane: rule-file validation against the workspace
//!   metric vocabulary, and deterministic replay of a rule pack over a
//!   recorded sample stream or run envelope, reproducing the exact
//!   inactive → pending → firing → resolved transcript (with `--expect`
//!   as a CI gate);
//! * `obsctl watch` / `obsctl series export` — terminal sparklines over
//!   the `opad-tsdb` history plane (a recorded sample stream, or a live
//!   `opad-serve` `/timeseries` endpoint via `--addr`; `--once` renders
//!   one frame for CI), and ring contents re-serialised as replayable
//!   sample-stream JSONL;
//! * `obsctl list` / `obsctl selfcheck` — uniform discovery of every run
//!   envelope and schema validation of every artefact in `results/`.
//!
//! Everything here reads the wire formats owned by `opad-telemetry`
//! (trace lines) and `opad-bench` (envelopes) through the hand-rolled,
//! std-only JSON reader, with forward-compatible unknown-field skipping:
//! an artefact from a newer writer with extra fields still parses, while
//! a bumped `schema_version` is rejected loudly.

#![warn(missing_docs)]

mod alerts;
mod bench;
mod cli;
mod diff;
mod envelope;
mod flame;
mod metrics;
mod perf;
mod selfcheck;
mod tree;
mod watch;

pub use alerts::envelope_frame;
pub use bench::{next_bench_seq, run_benchmarks, write_bench_report, BenchConfig, KernelStats};
pub use bench::{read_bench_report, BenchReport, BENCH_SCHEMA_VERSION};
pub use cli::{run, CliEnv};
pub use diff::{diff_runs, DiffConfig, DiffReport, MetricDelta};
pub use envelope::{
    read_envelope, Envelope, EnvelopeError, TelemetrySummary, SUPPORTED_ENVELOPE_VERSION,
};
pub use flame::{collapsed_stacks, FlameMode, StackLine};
pub use metrics::{metrics_from_run, RunMetrics};
pub use perf::{
    gate, history, load_series, report_json, report_md, BenchSeries, GateConfig, GateReport,
    GateRow, GateVerdict, KernelTrend, TrendPoint,
};
pub use selfcheck::{selfcheck_dir, CheckOutcome};
pub use tree::{aggregate_spans, critical_path, SpanTree};
pub use watch::render_watch;
