//! Collapsed-stack export of an aggregated span tree.
//!
//! The collapsed-stack format is the lingua franca of flamegraph
//! renderers (Brendan Gregg's `flamegraph.pl`, speedscope, inferno):
//! one line per unique stack, frames joined by `;`, followed by a space
//! and an integer sample value — here microseconds of wall time:
//!
//! ```text
//! round;fuzz;attack/pgd 1234
//! ```
//!
//! Two attribution modes:
//!
//! * [`FlameMode::SelfTime`] (default): each stack carries the node's
//!   *self* time — the share of its wall time not covered by child
//!   spans. Values are disjoint, so the sum over all lines equals the
//!   root spans' total duration (within per-line rounding), which is the
//!   invariant flamegraph renderers assume.
//! * [`FlameMode::TotalTime`]: each stack carries the node's *total*
//!   time, children included. Lines overlap ancestors; useful for
//!   reading absolute per-path cost directly, not for rendering.

use crate::tree::SpanTree;

/// How wall time is attributed to each stack line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlameMode {
    /// Self time per node (disjoint; sums to the run total).
    #[default]
    SelfTime,
    /// Total time per node (inclusive of children).
    TotalTime,
}

/// One collapsed stack: the `;`-joined frame path and its value in
/// integer microseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackLine {
    /// Frames from root to leaf, joined by `;`.
    pub stack: String,
    /// Wall time in microseconds (self or total, per [`FlameMode`]).
    pub value_us: u64,
}

impl std::fmt::Display for StackLine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.stack, self.value_us)
    }
}

fn sanitize_frame(name: &str) -> String {
    // `;` separates frames and a space separates stack from value, so
    // neither may appear inside a frame name.
    name.chars()
        .map(|c| if c == ';' || c == ' ' { '_' } else { c })
        .collect()
}

/// Flattens an aggregated span tree (the synthetic root returned by
/// [`crate::aggregate_spans`]) into collapsed-stack lines, depth-first in
/// first-seen order. Zero-valued lines are skipped — renderers ignore
/// them and they bloat output for trees with many instant spans.
pub fn collapsed_stacks(root: &SpanTree, mode: FlameMode) -> Vec<StackLine> {
    fn go(node: &SpanTree, prefix: &str, mode: FlameMode, out: &mut Vec<StackLine>) {
        let frame = sanitize_frame(&node.name);
        let stack = if prefix.is_empty() {
            frame
        } else {
            format!("{prefix};{frame}")
        };
        let ms = match mode {
            FlameMode::SelfTime => node.self_ms,
            FlameMode::TotalTime => node.total_ms,
        };
        let value_us = (ms * 1e3).round() as u64;
        if value_us > 0 {
            out.push(StackLine {
                stack: stack.clone(),
                value_us,
            });
        }
        for c in &node.children {
            go(c, &stack, mode, out);
        }
    }
    let mut out = Vec::new();
    for c in &root.children {
        go(c, "", mode, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::aggregate_spans;
    use opad_telemetry::Event;

    fn start(id: u64, parent: Option<u64>, name: &str) -> Event {
        Event::SpanStart {
            id,
            parent,
            name: name.to_string(),
            t_ms: 0.0,
        }
    }

    fn end(id: u64, parent: Option<u64>, name: &str, wall_ms: f64) -> Event {
        Event::SpanEnd {
            id,
            parent,
            name: name.to_string(),
            t_ms: 0.0,
            wall_ms,
        }
    }

    fn sample_tree() -> SpanTree {
        aggregate_spans(&[
            start(1, None, "round"),
            start(2, Some(1), "fuzz"),
            start(3, Some(2), "attack/pgd"),
            end(3, Some(2), "attack/pgd", 40.0),
            end(2, Some(1), "fuzz", 60.0),
            start(4, Some(1), "assess"),
            end(4, Some(1), "assess", 30.0),
            end(1, None, "round", 100.0),
        ])
    }

    #[test]
    fn self_mode_sums_to_the_root_duration() {
        let tree = sample_tree();
        let lines = collapsed_stacks(&tree, FlameMode::SelfTime);
        assert!(!lines.is_empty());
        let total: u64 = lines.iter().map(|l| l.value_us).sum();
        assert_eq!(total, 100_000, "self times partition the root's 100 ms");
        let pgd = lines
            .iter()
            .find(|l| l.stack == "round;fuzz;attack/pgd")
            .expect("leaf stack present");
        assert_eq!(pgd.value_us, 40_000);
        assert_eq!(pgd.to_string(), "round;fuzz;attack/pgd 40000");
    }

    #[test]
    fn total_mode_reports_inclusive_times() {
        let tree = sample_tree();
        let lines = collapsed_stacks(&tree, FlameMode::TotalTime);
        let round = lines.iter().find(|l| l.stack == "round").expect("root");
        assert_eq!(round.value_us, 100_000);
        let fuzz = lines.iter().find(|l| l.stack == "round;fuzz").expect("mid");
        assert_eq!(fuzz.value_us, 60_000);
    }

    #[test]
    fn frame_names_are_sanitized_and_zero_lines_skipped() {
        let tree = aggregate_spans(&[
            start(1, None, "odd name;x"),
            start(2, Some(1), "instant"),
            end(2, Some(1), "instant", 0.0),
            end(1, None, "odd name;x", 5.0),
        ]);
        let lines = collapsed_stacks(&tree, FlameMode::SelfTime);
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].stack, "odd_name_x");
        assert_eq!(lines[0].value_us, 5_000);
    }

    #[test]
    fn empty_tree_yields_no_lines() {
        let tree = aggregate_spans(&[]);
        assert!(collapsed_stacks(&tree, FlameMode::SelfTime).is_empty());
    }
}
