//! Typed view of the `results/<exp>.json` envelope written by
//! `opad_bench::ExpRun`.
//!
//! Parsing is forward-compatible: unknown fields anywhere are skipped
//! (they become result sections at the top level, and are ignored inside
//! the telemetry summary), while a `schema_version` above the supported
//! one is rejected — the same policy the trace reader applies per line.

use opad_telemetry::{parse_json, JsonError, JsonValue};
use std::fmt;
use std::path::Path;

/// Highest `results/<exp>.json` envelope version this reader understands
/// (mirrors `opad_bench::REPORT_SCHEMA_VERSION`).
pub const SUPPORTED_ENVELOPE_VERSION: u32 = 1;

/// Envelope keys that are metadata rather than result sections.
const META_KEYS: [&str; 6] = [
    "schema_version",
    "experiment",
    "run_id",
    "config",
    "telemetry",
    "note",
];

/// Why an envelope could not be read.
#[derive(Debug)]
pub enum EnvelopeError {
    /// The file could not be read at all.
    Io(std::io::Error),
    /// The file is not valid JSON.
    Json(JsonError),
    /// The document is not a JSON object.
    NotAnObject,
    /// A required metadata field is missing or has the wrong type.
    MissingField(&'static str),
    /// The envelope was written by a newer layout than this reader.
    UnsupportedVersion {
        /// Version stamped in the file.
        found: u64,
        /// Highest version this reader supports.
        supported: u32,
    },
}

impl fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvelopeError::Io(e) => write!(f, "cannot read envelope: {e}"),
            EnvelopeError::Json(e) => write!(f, "envelope is not valid JSON: {e}"),
            EnvelopeError::NotAnObject => write!(f, "envelope is not a JSON object"),
            EnvelopeError::MissingField(name) => {
                write!(f, "envelope is missing required field {name:?}")
            }
            EnvelopeError::UnsupportedVersion { found, supported } => write!(
                f,
                "envelope schema_version {found} is newer than supported {supported}"
            ),
        }
    }
}

impl std::error::Error for EnvelopeError {}

/// Aggregate telemetry embedded in an envelope (the JSON form of
/// `opad_telemetry::Summary`). Absent (`None` fields empty) in legacy
/// envelopes converted from the pre-envelope layout.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySummary {
    /// Whole-run wall clock in milliseconds.
    pub wall_ms: f64,
    /// Number of telemetry operations recorded.
    pub events: u64,
    /// Recording throughput.
    pub events_per_sec: f64,
    /// Final counter totals, in name order.
    pub counters: Vec<(String, u64)>,
    /// Last-written gauge values, in name order.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries: `(name, count, min, max, mean, p50, p90, p99)`.
    pub histograms: Vec<HistStat>,
    /// Per-span-name rollups.
    pub spans: Vec<SpanStat>,
}

/// One histogram summary row from the envelope telemetry block.
#[derive(Debug, Clone, PartialEq)]
pub struct HistStat {
    /// Histogram name.
    pub name: String,
    /// Number of recorded samples.
    pub count: u64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Mean sample.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// One per-span-name rollup row from the envelope telemetry block.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Span name.
    pub name: String,
    /// Completed instances.
    pub count: u64,
    /// Sum of wall times, ms.
    pub total_ms: f64,
    /// Fastest instance, ms.
    pub min_ms: f64,
    /// Median instance, ms.
    pub p50_ms: f64,
    /// 90th percentile, ms.
    pub p90_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// Slowest instance, ms.
    pub max_ms: f64,
}

/// A parsed `results/<exp>.json` envelope.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Envelope layout version (≤ [`SUPPORTED_ENVELOPE_VERSION`]).
    pub schema_version: u64,
    /// Experiment name (also the file stem).
    pub experiment: String,
    /// `git describe` style id of the tree that produced the run.
    pub run_id: String,
    /// Full experiment configuration, as written.
    pub config: JsonValue,
    /// Aggregate telemetry, when the run recorded any.
    pub telemetry: Option<TelemetrySummary>,
    /// Result sections: every non-metadata top-level key, in file order
    /// (`rows` for single-table experiments; e.g. `op_quality` and
    /// `downstream` for exp8).
    pub sections: Vec<(String, JsonValue)>,
}

impl Envelope {
    /// Parses an envelope from JSON text.
    ///
    /// # Errors
    ///
    /// Returns an [`EnvelopeError`] on malformed JSON, a missing required
    /// field, or a too-new `schema_version`.
    pub fn from_json(text: &str) -> Result<Envelope, EnvelopeError> {
        let doc = parse_json(text).map_err(EnvelopeError::Json)?;
        let obj = doc.as_obj().ok_or(EnvelopeError::NotAnObject)?;
        let field = |name: &'static str| {
            obj.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or(EnvelopeError::MissingField(name))
        };
        let schema_version = field("schema_version")?
            .as_u64()
            .ok_or(EnvelopeError::MissingField("schema_version"))?;
        if schema_version > u64::from(SUPPORTED_ENVELOPE_VERSION) {
            return Err(EnvelopeError::UnsupportedVersion {
                found: schema_version,
                supported: SUPPORTED_ENVELOPE_VERSION,
            });
        }
        let experiment = field("experiment")?
            .as_str()
            .ok_or(EnvelopeError::MissingField("experiment"))?
            .to_string();
        let run_id = field("run_id")?
            .as_str()
            .ok_or(EnvelopeError::MissingField("run_id"))?
            .to_string();
        let config = field("config").cloned().unwrap_or(JsonValue::Null);
        let telemetry = match obj.iter().find(|(k, _)| k == "telemetry") {
            Some((_, JsonValue::Obj(_))) => Some(parse_telemetry(
                field("telemetry").expect("key just matched"),
            )),
            _ => None,
        };
        let sections = obj
            .iter()
            .filter(|(k, _)| !META_KEYS.contains(&k.as_str()))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        Ok(Envelope {
            schema_version,
            experiment,
            run_id,
            config,
            telemetry,
            sections,
        })
    }
}

/// Reads and parses an envelope file.
///
/// # Errors
///
/// I/O failures plus everything [`Envelope::from_json`] rejects.
pub fn read_envelope(path: &Path) -> Result<Envelope, EnvelopeError> {
    let text = std::fs::read_to_string(path).map_err(EnvelopeError::Io)?;
    Envelope::from_json(&text)
}

/// Pulls the typed summary out of the `telemetry` object, skipping any
/// field a newer writer may have added and defaulting anything missing —
/// metadata losses degrade the report, they don't kill it.
fn parse_telemetry(v: &JsonValue) -> TelemetrySummary {
    let mut s = TelemetrySummary {
        wall_ms: num(v, "wall_ms"),
        events: int(v, "events"),
        events_per_sec: num(v, "events_per_sec"),
        ..TelemetrySummary::default()
    };
    if let Some(obj) = v.get("counters").and_then(JsonValue::as_obj) {
        s.counters = obj
            .iter()
            .filter_map(|(k, t)| t.as_u64().map(|t| (k.clone(), t)))
            .collect();
    }
    if let Some(obj) = v.get("gauges").and_then(JsonValue::as_obj) {
        s.gauges = obj
            .iter()
            .filter_map(|(k, g)| g.as_f64().map(|g| (k.clone(), g)))
            .collect();
    }
    if let Some(arr) = v.get("histograms").and_then(JsonValue::as_arr) {
        s.histograms = arr
            .iter()
            .filter_map(|h| {
                Some(HistStat {
                    name: h.get("name")?.as_str()?.to_string(),
                    count: int(h, "count"),
                    min: num(h, "min"),
                    max: num(h, "max"),
                    mean: num(h, "mean"),
                    p50: num(h, "p50"),
                    p90: num(h, "p90"),
                    p99: num(h, "p99"),
                })
            })
            .collect();
    }
    if let Some(arr) = v.get("spans").and_then(JsonValue::as_arr) {
        s.spans = arr
            .iter()
            .filter_map(|r| {
                Some(SpanStat {
                    name: r.get("name")?.as_str()?.to_string(),
                    count: int(r, "count"),
                    total_ms: num(r, "total_ms"),
                    min_ms: num(r, "min_ms"),
                    p50_ms: num(r, "p50_ms"),
                    p90_ms: num(r, "p90_ms"),
                    p99_ms: num(r, "p99_ms"),
                    max_ms: num(r, "max_ms"),
                })
            })
            .collect();
    }
    s
}

fn num(v: &JsonValue, key: &str) -> f64 {
    v.get(key).and_then(JsonValue::as_f64).unwrap_or(f64::NAN)
}

fn int(v: &JsonValue, key: &str) -> u64 {
    v.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"{
        "schema_version": 1,
        "experiment": "exp_test",
        "run_id": "abc1234",
        "config": {"budget": 100},
        "telemetry": {
            "wall_ms": 1200.5, "events": 42, "events_per_sec": 35.0,
            "counters": {"pipeline.seeds_attacked": 400, "pipeline.aes_found": 90},
            "gauges": {"pipeline.pfd_mean": 0.01},
            "histograms": [{"name": "attack.pgd.iters_to_success",
                "count": 90, "min": 1.0, "max": 15.0, "mean": 6.0,
                "p50": 5.0, "p90": 12.0, "p99": 15.0}],
            "spans": [{"name": "round", "count": 4, "total_ms": 1100.0,
                "min_ms": 250.0, "p50_ms": 270.0, "p90_ms": 300.0,
                "p99_ms": 300.0, "max_ms": 300.0}]
        },
        "rows": [1, 2, 3]
    }"#;

    #[test]
    fn parses_the_full_envelope() {
        let e = Envelope::from_json(MINIMAL).expect("well-formed envelope parses");
        assert_eq!(e.schema_version, 1);
        assert_eq!(e.experiment, "exp_test");
        assert_eq!(e.run_id, "abc1234");
        let t = e.telemetry.expect("telemetry block present");
        assert_eq!(t.events, 42);
        assert_eq!(t.counters[0], ("pipeline.seeds_attacked".into(), 400));
        assert_eq!(t.histograms[0].p90, 12.0);
        assert_eq!(t.spans[0].count, 4);
        assert_eq!(e.sections.len(), 1);
        assert_eq!(e.sections[0].0, "rows");
        assert_eq!(e.sections[0].1.as_arr().map(<[JsonValue]>::len), Some(3));
    }

    #[test]
    fn unknown_fields_everywhere_are_tolerated() {
        let doc = MINIMAL
            .replace("\"events\": 42,", "\"events\": 42, \"new_metric\": [1,2],")
            .replace(
                "\"rows\": [1, 2, 3]",
                "\"rows\": [], \"extra_table\": {\"a\": 1}",
            );
        let e = Envelope::from_json(&doc).expect("unknown fields are skipped");
        assert_eq!(e.telemetry.expect("still parsed").events, 42);
        let names: Vec<&str> = e.sections.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["rows", "extra_table"]);
    }

    #[test]
    fn newer_schema_version_is_rejected() {
        let doc = MINIMAL.replace("\"schema_version\": 1", "\"schema_version\": 2");
        match Envelope::from_json(&doc) {
            Err(EnvelopeError::UnsupportedVersion {
                found: 2,
                supported: 1,
            }) => {}
            other => panic!("expected version rejection, got {other:?}"),
        }
    }

    #[test]
    fn null_telemetry_reads_as_absent() {
        let start = MINIMAL
            .find("\"telemetry\"")
            .expect("fixture has telemetry");
        let end = MINIMAL.find("\"rows\"").expect("fixture has rows");
        let doc = format!(
            "{}\"telemetry\": null,\n        {}",
            &MINIMAL[..start],
            &MINIMAL[end..]
        );
        let e = Envelope::from_json(&doc).expect("null telemetry is legal");
        assert!(e.telemetry.is_none());
    }

    #[test]
    fn missing_run_id_is_named_in_the_error() {
        let doc = MINIMAL.replace("\"run_id\": \"abc1234\",", "");
        match Envelope::from_json(&doc) {
            Err(EnvelopeError::MissingField("run_id")) => {}
            other => panic!("expected missing run_id, got {other:?}"),
        }
    }
}
