//! Two-run regression comparison — the `obsctl diff` trajectory gate.

use crate::metrics::RunMetrics;
use std::fmt;

/// Thresholds for calling a metric change a regression.
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Maximum tolerated relative change in the *bad* direction
    /// (e.g. `0.2` = a 20% slowdown fails).
    pub threshold: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig { threshold: 0.2 }
    }
}

/// How a metric's sign maps to quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Larger values are slower/worse (wall clock, iterations, rounds).
    HigherIsWorse,
    /// Larger values are better (throughput).
    HigherIsBetter,
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Metric name as printed.
    pub name: &'static str,
    /// Value in the baseline run.
    pub a: f64,
    /// Value in the candidate run.
    pub b: f64,
    /// Relative change in the *bad* direction (positive = worse), or
    /// `NaN` when either side is missing.
    pub badness: f64,
    /// Whether `badness` exceeds the configured threshold.
    pub regressed: bool,
}

/// A full regression report between a baseline and a candidate run.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Baseline run id.
    pub run_a: String,
    /// Candidate run id.
    pub run_b: String,
    /// Threshold the verdicts used.
    pub threshold: f64,
    /// Every compared metric, in a stable order.
    pub deltas: Vec<MetricDelta>,
}

impl DiffReport {
    /// True when any metric regressed past the threshold — the condition
    /// under which `obsctl diff` exits non-zero.
    pub fn any_regression(&self) -> bool {
        self.deltas.iter().any(|d| d.regressed)
    }
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "regression report: {} (baseline) vs {} (candidate), threshold {:.0}%",
            self.run_a,
            self.run_b,
            self.threshold * 100.0
        )?;
        writeln!(
            f,
            "  {:<22} {:>12} {:>12} {:>9}  verdict",
            "metric", "baseline", "candidate", "change"
        )?;
        for d in &self.deltas {
            let verdict = if d.badness.is_nan() {
                "n/a"
            } else if d.regressed {
                "REGRESSED"
            } else if d.badness < 0.0 {
                "improved"
            } else {
                "ok"
            };
            let change = if d.badness.is_nan() {
                "-".to_string()
            } else {
                format!("{:+.1}%", d.badness * 100.0)
            };
            writeln!(
                f,
                "  {:<22} {:>12} {:>12} {:>9}  {verdict}",
                d.name,
                fmt_value(d.a),
                fmt_value(d.b),
                change
            )?;
        }
        let verdict = if self.any_regression() {
            "REGRESSION"
        } else {
            "clean"
        };
        write!(f, "  overall: {verdict}")
    }
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Compares two runs' metrics. Metrics missing on either side are
/// reported but never count as regressions (a run that simply didn't
/// record PGD histograms shouldn't fail the gate).
pub fn diff_runs(a: &RunMetrics, b: &RunMetrics, cfg: &DiffConfig) -> DiffReport {
    use Direction::{HigherIsBetter, HigherIsWorse};
    let rows: [(&'static str, f64, f64, Direction); 7] = [
        ("wall_ms", a.wall_ms, b.wall_ms, HigherIsWorse),
        (
            "iters_to_success_p50",
            a.iters_p50,
            b.iters_p50,
            HigherIsWorse,
        ),
        (
            "iters_to_success_p90",
            a.iters_p90,
            b.iters_p90,
            HigherIsWorse,
        ),
        (
            "iters_to_success_p99",
            a.iters_p99,
            b.iters_p99,
            HigherIsWorse,
        ),
        (
            "seeds_per_sec",
            a.seeds_per_sec,
            b.seeds_per_sec,
            HigherIsBetter,
        ),
        ("aes_per_sec", a.aes_per_sec, b.aes_per_sec, HigherIsBetter),
        ("rounds", a.rounds, b.rounds, HigherIsWorse),
    ];
    let deltas = rows
        .into_iter()
        .map(|(name, va, vb, dir)| {
            let badness = if !va.is_finite() || !vb.is_finite() || va == 0.0 {
                f64::NAN
            } else {
                match dir {
                    HigherIsWorse => (vb - va) / va,
                    HigherIsBetter => (va - vb) / va,
                }
            };
            MetricDelta {
                name,
                a: va,
                b: vb,
                badness,
                regressed: badness.is_finite() && badness > cfg.threshold,
            }
        })
        .collect();
    DiffReport {
        run_a: a.run_id.clone(),
        run_b: b.run_id.clone(),
        threshold: cfg.threshold,
        deltas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(wall: f64, p50: f64, seeds: f64) -> RunMetrics {
        RunMetrics {
            run_id: "r".into(),
            wall_ms: wall,
            iters_p50: p50,
            iters_p90: p50 * 2.0,
            iters_p99: p50 * 3.0,
            seeds_per_sec: seeds,
            aes_per_sec: seeds / 4.0,
            rounds: 5.0,
        }
    }

    #[test]
    fn identical_runs_are_clean() {
        let a = metrics(1000.0, 5.0, 40.0);
        let report = diff_runs(&a, &a.clone(), &DiffConfig::default());
        assert!(!report.any_regression());
        assert!(report.deltas.iter().all(|d| d.badness == 0.0));
    }

    #[test]
    fn a_25_percent_slowdown_trips_the_20_percent_gate() {
        let a = metrics(1000.0, 5.0, 40.0);
        let b = metrics(1250.0, 5.0, 40.0);
        let report = diff_runs(&a, &b, &DiffConfig::default());
        assert!(report.any_regression());
        let wall = &report.deltas[0];
        assert!(wall.regressed);
        assert!((wall.badness - 0.25).abs() < 1e-9);
    }

    #[test]
    fn throughput_drops_count_as_regressions_and_gains_do_not() {
        let a = metrics(1000.0, 5.0, 40.0);
        let mut worse = metrics(1000.0, 5.0, 28.0); // -30% seeds/s
        worse.aes_per_sec = a.aes_per_sec * 2.0; // better is never worse
        let report = diff_runs(&a, &worse, &DiffConfig::default());
        let seeds = report
            .deltas
            .iter()
            .find(|d| d.name == "seeds_per_sec")
            .expect("metric present");
        assert!(seeds.regressed);
        let aes = report
            .deltas
            .iter()
            .find(|d| d.name == "aes_per_sec")
            .expect("metric present");
        assert!(!aes.regressed && aes.badness < 0.0);
    }

    #[test]
    fn missing_metrics_never_regress() {
        let a = metrics(1000.0, f64::NAN, 40.0);
        let b = metrics(1100.0, 9.0, f64::NAN);
        let report = diff_runs(&a, &b, &DiffConfig { threshold: 0.5 });
        assert!(!report.any_regression());
        assert!(report
            .deltas
            .iter()
            .filter(|d| d.name.starts_with("iters") || d.name.ends_with("per_sec"))
            .all(|d| d.badness.is_nan()));
    }

    #[test]
    fn the_threshold_is_configurable() {
        let a = metrics(1000.0, 5.0, 40.0);
        let b = metrics(1100.0, 5.0, 40.0); // +10%
        assert!(!diff_runs(&a, &b, &DiffConfig::default()).any_regression());
        assert!(diff_runs(&a, &b, &DiffConfig { threshold: 0.05 }).any_regression());
    }

    #[test]
    fn display_renders_a_table_with_the_verdict() {
        let a = metrics(1000.0, 5.0, 40.0);
        let b = metrics(1500.0, 5.0, 40.0);
        let text = diff_runs(&a, &b, &DiffConfig::default()).to_string();
        assert!(text.contains("wall_ms"));
        assert!(text.contains("REGRESSED"));
        assert!(text.contains("overall: REGRESSION"));
    }
}
