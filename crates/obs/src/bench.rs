//! The `obsctl bench` micro-benchmark harness.
//!
//! Drives warmup + N individually-timed iterations over every registered
//! [`BenchKernel`] and snapshots the timings into a schema-versioned
//! `BENCH_<seq>.json` at the repository root — the series the perf
//! trajectory tooling (`obsctl perf history` / `gate` / `report`)
//! analyses across commits.
//!
//! Snapshot format (schema v2): a top-level provenance block (git commit,
//! core count, `OPAD_THREADS`), the harness configuration (`warmup_iters`,
//! `iters`), a monotonic `seq`, and one row per kernel carrying the raw
//! sample count alongside the quantiles — so downstream gates can scale
//! their thresholds with how much data backs each number. v1 snapshots
//! (unpadded filenames, no provenance, no sample counts) stay readable.

use opad_telemetry::{bench_files, parse_json, BenchKernel, BenchProvenance, JsonValue};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

pub use opad_telemetry::BENCH_SCHEMA_VERSION;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Untimed iterations before measurement (cache/branch warmup).
    pub warmup_iters: u32,
    /// Timed iterations per kernel.
    pub iters: u32,
    /// Only run kernels whose name contains this substring.
    pub filter: Option<String>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            warmup_iters: 3,
            iters: 30,
            filter: None,
        }
    }
}

/// Timing statistics for one kernel, all in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// Kernel name (`<crate>/<kernel>`).
    pub name: String,
    /// Timed iterations behind the quantiles.
    pub iters: u32,
    /// Raw samples backing the quantiles (equals `iters` for snapshots
    /// this harness wrote; v1 snapshots fall back to `iters` on read).
    pub samples: u32,
    /// Mean iteration time.
    pub mean_ns: f64,
    /// Fastest iteration.
    pub min_ns: f64,
    /// Median iteration.
    pub p50_ns: f64,
    /// 90th percentile iteration.
    pub p90_ns: f64,
    /// 99th percentile iteration.
    pub p99_ns: f64,
    /// Slowest iteration.
    pub max_ns: f64,
}

/// One parsed `BENCH_<seq>.json` snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version the file declared.
    pub schema_version: u32,
    /// Monotonic sequence number (`BENCH_0001.json` → 1).
    pub seq: u32,
    /// Run id of the recording working tree.
    pub run_id: String,
    /// Warmup iterations the harness ran before timing.
    pub warmup_iters: u32,
    /// Configured timed iterations per kernel (`None` in v1 snapshots,
    /// which only persisted `warmup_iters` at the top level).
    pub iters: Option<u32>,
    /// Recording-machine context (`None` in v1 snapshots).
    pub provenance: Option<BenchProvenance>,
    /// Per-kernel timing rows.
    pub kernels: Vec<KernelStats>,
}

/// Runs every (filter-matching) kernel: `warmup_iters` untimed rounds,
/// then `iters` individually timed ones, reduced to quantiles.
pub fn run_benchmarks(kernels: Vec<BenchKernel>, cfg: &BenchConfig) -> Vec<KernelStats> {
    let mut out = Vec::new();
    for mut k in kernels {
        if let Some(f) = &cfg.filter {
            if !k.name.contains(f.as_str()) {
                continue;
            }
        }
        for _ in 0..cfg.warmup_iters {
            (k.run)();
        }
        let mut samples_ns: Vec<f64> = Vec::with_capacity(cfg.iters as usize);
        for _ in 0..cfg.iters.max(1) {
            let t = Instant::now();
            (k.run)();
            samples_ns.push(t.elapsed().as_secs_f64() * 1e9);
        }
        samples_ns.sort_by(f64::total_cmp);
        let n = samples_ns.len();
        let q = |p: f64| samples_ns[((p * n as f64).ceil() as usize).clamp(1, n) - 1];
        out.push(KernelStats {
            name: k.name.to_string(),
            iters: n as u32,
            samples: n as u32,
            mean_ns: samples_ns.iter().sum::<f64>() / n as f64,
            min_ns: samples_ns[0],
            p50_ns: q(0.50),
            p90_ns: q(0.90),
            p99_ns: q(0.99),
            max_ns: samples_ns[n - 1],
        });
    }
    out
}

/// Next unused sequence number for `BENCH_<seq>.json` in `dir`. The
/// series is 1-based (`BENCH_0001.json` is the committed baseline);
/// both padded and historical unpadded names count.
pub fn next_bench_seq(dir: &Path) -> u32 {
    bench_files(dir)
        .last()
        .map(|(seq, _)| seq + 1)
        .unwrap_or(1)
        .max(1)
}

/// Writes `BENCH_<seq>.json` (sequence zero-padded to 4 digits) into
/// `dir` and returns its path.
///
/// # Errors
///
/// Propagates the underlying file write failure.
pub fn write_bench_report(
    dir: &Path,
    seq: u32,
    run_id: &str,
    cfg: &BenchConfig,
    provenance: &BenchProvenance,
    stats: &[KernelStats],
) -> std::io::Result<PathBuf> {
    let mut s = String::with_capacity(1024);
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema_version\": {BENCH_SCHEMA_VERSION},");
    let _ = writeln!(s, "  \"seq\": {seq},");
    let _ = writeln!(s, "  \"run_id\": {},", json_str(run_id));
    let _ = writeln!(s, "  \"warmup_iters\": {},", cfg.warmup_iters);
    let _ = writeln!(s, "  \"iters\": {},", cfg.iters);
    let _ = writeln!(s, "  \"provenance\": {{");
    let _ = writeln!(
        s,
        "    \"git_commit\": {},",
        json_str(&provenance.git_commit)
    );
    let _ = writeln!(s, "    \"cores\": {},", provenance.cores);
    match provenance.opad_threads {
        Some(n) => {
            let _ = writeln!(s, "    \"opad_threads\": {n}");
        }
        None => {
            let _ = writeln!(s, "    \"opad_threads\": null");
        }
    }
    s.push_str("  },\n");
    s.push_str("  \"kernels\": [\n");
    for (i, k) in stats.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": {}, \"iters\": {}, \"samples\": {}, \"mean_ns\": {:.1}, \
             \"min_ns\": {:.1}, \"p50_ns\": {:.1}, \"p90_ns\": {:.1}, \"p99_ns\": {:.1}, \
             \"max_ns\": {:.1}}}",
            json_str(&k.name),
            k.iters,
            k.samples,
            k.mean_ns,
            k.min_ns,
            k.p50_ns,
            k.p90_ns,
            k.p99_ns,
            k.max_ns
        );
        s.push_str(if i + 1 < stats.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    let path = dir.join(format!("BENCH_{seq:04}.json"));
    std::fs::write(&path, s)?;
    Ok(path)
}

/// Reads a `BENCH_<seq>.json` (schema v1 or v2) back into a
/// [`BenchReport`].
///
/// # Errors
///
/// Returns a human-readable message on I/O failure, malformed JSON, a
/// too-new `schema_version`, or rows missing required fields.
pub fn read_bench_report(path: &Path) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let doc = parse_json(&text).map_err(|e| format!("not valid JSON: {e}"))?;
    let version = doc
        .get("schema_version")
        .and_then(JsonValue::as_u64)
        .ok_or("missing schema_version")?;
    if version > u64::from(BENCH_SCHEMA_VERSION) {
        return Err(format!(
            "schema_version {version} is newer than supported {BENCH_SCHEMA_VERSION}"
        ));
    }
    let run_id = doc
        .get("run_id")
        .and_then(JsonValue::as_str)
        .ok_or("missing run_id")?
        .to_string();
    // `seq` was always written but tolerate its absence (hand-made
    // fixtures): fall back to the filename convention, then 0.
    let seq = doc
        .get("seq")
        .and_then(JsonValue::as_u64)
        .map(|s| s as u32)
        .or_else(|| {
            path.file_name()
                .and_then(|n| n.to_str())
                .and_then(opad_telemetry::bench_seq)
        })
        .unwrap_or(0);
    let warmup_iters = doc
        .get("warmup_iters")
        .and_then(JsonValue::as_u64)
        .unwrap_or(0) as u32;
    let iters = doc
        .get("iters")
        .and_then(JsonValue::as_u64)
        .map(|n| n as u32);
    let provenance = doc.get("provenance").and_then(|p| {
        Some(BenchProvenance {
            git_commit: p.get("git_commit")?.as_str()?.to_string(),
            cores: p.get("cores").and_then(JsonValue::as_u64).unwrap_or(0) as u32,
            opad_threads: p
                .get("opad_threads")
                .and_then(JsonValue::as_u64)
                .map(|n| n as u32),
        })
    });
    let kernels = doc
        .get("kernels")
        .and_then(JsonValue::as_arr)
        .ok_or("missing kernels array")?;
    let mut out = Vec::with_capacity(kernels.len());
    for (i, k) in kernels.iter().enumerate() {
        let f = |key: &str| {
            k.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("kernel {i}: missing {key}"))
        };
        let iters = k
            .get("iters")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("kernel {i}: missing iters"))? as u32;
        out.push(KernelStats {
            name: k
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("kernel {i}: missing name"))?
                .to_string(),
            iters,
            // v1 rows have no samples field; iters is the honest fallback.
            samples: k
                .get("samples")
                .and_then(JsonValue::as_u64)
                .map(|n| n as u32)
                .unwrap_or(iters),
            mean_ns: f("mean_ns")?,
            min_ns: f("min_ns")?,
            p50_ns: f("p50_ns")?,
            p90_ns: f("p90_ns")?,
            p99_ns: f("p99_ns")?,
            max_ns: f("max_ns")?,
        });
    }
    Ok(BenchReport {
        schema_version: version as u32,
        seq,
        run_id,
        warmup_iters,
        iters,
        provenance,
        kernels: out,
    })
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_kernels() -> Vec<BenchKernel> {
        vec![
            BenchKernel::new("test/spin", || {
                std::hint::black_box((0..100).sum::<u64>());
            }),
            BenchKernel::new("test/noop", || {}),
            BenchKernel::new("other/skip_me", || {}),
        ]
    }

    fn provenance() -> BenchProvenance {
        BenchProvenance {
            git_commit: "abc1234-dirty".to_string(),
            cores: 8,
            opad_threads: Some(4),
        }
    }

    #[test]
    fn harness_times_and_orders_quantiles() {
        let cfg = BenchConfig {
            warmup_iters: 1,
            iters: 20,
            filter: None,
        };
        let stats = run_benchmarks(fake_kernels(), &cfg);
        assert_eq!(stats.len(), 3);
        for k in &stats {
            assert_eq!(k.iters, 20);
            assert_eq!(k.samples, 20);
            assert!(k.min_ns <= k.p50_ns, "{k:?}");
            assert!(k.p50_ns <= k.p90_ns, "{k:?}");
            assert!(k.p90_ns <= k.p99_ns, "{k:?}");
            assert!(k.p99_ns <= k.max_ns, "{k:?}");
            assert!(k.mean_ns >= k.min_ns && k.mean_ns <= k.max_ns, "{k:?}");
        }
    }

    #[test]
    fn the_filter_selects_by_substring() {
        let cfg = BenchConfig {
            warmup_iters: 0,
            iters: 2,
            filter: Some("test/".into()),
        };
        let stats = run_benchmarks(fake_kernels(), &cfg);
        let names: Vec<&str> = stats.iter().map(|k| k.name.as_str()).collect();
        assert_eq!(names, ["test/spin", "test/noop"]);
    }

    #[test]
    fn reports_round_trip_and_the_sequence_advances() {
        let dir = std::env::temp_dir().join("opad_obs_bench_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir is creatable");
        // The series is 1-based: the first snapshot is BENCH_0001.json.
        assert_eq!(next_bench_seq(&dir), 1);
        let cfg = BenchConfig::default();
        let stats = run_benchmarks(fake_kernels(), &cfg);
        let path = write_bench_report(&dir, 1, "abc-dirty", &cfg, &provenance(), &stats)
            .expect("report writes");
        assert_eq!(
            path.file_name().and_then(|n| n.to_str()),
            Some("BENCH_0001.json")
        );
        assert_eq!(next_bench_seq(&dir), 2);
        let report = read_bench_report(&path).expect("report parses back");
        assert_eq!(report.schema_version, BENCH_SCHEMA_VERSION);
        assert_eq!(report.seq, 1);
        assert_eq!(report.run_id, "abc-dirty");
        assert_eq!(report.warmup_iters, cfg.warmup_iters);
        assert_eq!(report.iters, Some(cfg.iters));
        assert_eq!(report.provenance.as_ref(), Some(&provenance()));
        assert_eq!(report.kernels.len(), stats.len());
        for (a, b) in report.kernels.iter().zip(&stats) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.iters, b.iters);
            assert_eq!(a.samples, b.samples);
            // Values were rounded to 0.1 ns on write.
            assert!((a.p99_ns - b.p99_ns).abs() <= 0.05 + 1e-9);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_v1_snapshot_with_an_unpadded_name_still_reads() {
        let dir = std::env::temp_dir().join("opad_obs_bench_v1_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir is creatable");
        // Byte-for-byte what the v1 writer produced: unpadded filename,
        // warmup only at the top level, no samples, no provenance.
        let path = dir.join("BENCH_0.json");
        std::fs::write(
            &path,
            "{\n  \"schema_version\": 1,\n  \"seq\": 0,\n  \"run_id\": \"legacy\",\n  \
             \"warmup_iters\": 3,\n  \"kernels\": [\n    {\"name\": \"tensor/matmul_32\", \
             \"iters\": 30, \"mean_ns\": 1000.0, \"min_ns\": 900.0, \"p50_ns\": 990.0, \
             \"p90_ns\": 1100.0, \"p99_ns\": 1200.0, \"max_ns\": 1300.0}\n  ]\n}\n",
        )
        .expect("fixture writes");
        let report = read_bench_report(&path).expect("v1 snapshot parses");
        assert_eq!(report.schema_version, 1);
        assert_eq!(report.seq, 0);
        assert_eq!(report.run_id, "legacy");
        assert_eq!(report.iters, None);
        assert!(report.provenance.is_none());
        assert_eq!(report.kernels.len(), 1);
        // samples falls back to the per-kernel iters count.
        assert_eq!(report.kernels[0].samples, 30);
        // The unpadded name counts toward sequence discovery.
        assert_eq!(next_bench_seq(&dir), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_newer_bench_schema_is_rejected() {
        let dir = std::env::temp_dir().join("opad_obs_bench_ver_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir is creatable");
        let path = dir.join("BENCH_9.json");
        std::fs::write(
            &path,
            "{\"schema_version\": 99, \"run_id\": \"x\", \"kernels\": []}",
        )
        .expect("fixture writes");
        let err = read_bench_report(&path).expect_err("version 99 must be rejected");
        assert!(err.contains("newer than supported"), "{err}");
        assert_eq!(next_bench_seq(&dir), 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_missing_seq_falls_back_to_the_filename() {
        let dir = std::env::temp_dir().join("opad_obs_bench_noseq_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir is creatable");
        let path = dir.join("BENCH_0042.json");
        std::fs::write(
            &path,
            "{\"schema_version\": 2, \"run_id\": \"x\", \"kernels\": []}",
        )
        .expect("fixture writes");
        let report = read_bench_report(&path).expect("parses");
        assert_eq!(report.seq, 42);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
