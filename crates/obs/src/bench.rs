//! The `obsctl bench` micro-benchmark harness.
//!
//! Drives warmup + N individually-timed iterations over every registered
//! [`BenchKernel`] and snapshots the timings into a schema-versioned
//! `BENCH_<seq>.json` at the repository root — a series the trajectory
//! gate (`obsctl diff`-style eyeballing across commits) can follow.

use opad_telemetry::{parse_json, BenchKernel, JsonValue};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Version of the `BENCH_<seq>.json` layout.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Untimed iterations before measurement (cache/branch warmup).
    pub warmup_iters: u32,
    /// Timed iterations per kernel.
    pub iters: u32,
    /// Only run kernels whose name contains this substring.
    pub filter: Option<String>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            warmup_iters: 3,
            iters: 30,
            filter: None,
        }
    }
}

/// Timing statistics for one kernel, all in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// Kernel name (`<crate>/<kernel>`).
    pub name: String,
    /// Timed iterations behind the quantiles.
    pub iters: u32,
    /// Mean iteration time.
    pub mean_ns: f64,
    /// Fastest iteration.
    pub min_ns: f64,
    /// Median iteration.
    pub p50_ns: f64,
    /// 90th percentile iteration.
    pub p90_ns: f64,
    /// 99th percentile iteration.
    pub p99_ns: f64,
    /// Slowest iteration.
    pub max_ns: f64,
}

/// Runs every (filter-matching) kernel: `warmup_iters` untimed rounds,
/// then `iters` individually timed ones, reduced to quantiles.
pub fn run_benchmarks(kernels: Vec<BenchKernel>, cfg: &BenchConfig) -> Vec<KernelStats> {
    let mut out = Vec::new();
    for mut k in kernels {
        if let Some(f) = &cfg.filter {
            if !k.name.contains(f.as_str()) {
                continue;
            }
        }
        for _ in 0..cfg.warmup_iters {
            (k.run)();
        }
        let mut samples_ns: Vec<f64> = Vec::with_capacity(cfg.iters as usize);
        for _ in 0..cfg.iters.max(1) {
            let t = Instant::now();
            (k.run)();
            samples_ns.push(t.elapsed().as_secs_f64() * 1e9);
        }
        samples_ns.sort_by(f64::total_cmp);
        let n = samples_ns.len();
        let q = |p: f64| samples_ns[((p * n as f64).ceil() as usize).clamp(1, n) - 1];
        out.push(KernelStats {
            name: k.name.to_string(),
            iters: n as u32,
            mean_ns: samples_ns.iter().sum::<f64>() / n as f64,
            min_ns: samples_ns[0],
            p50_ns: q(0.50),
            p90_ns: q(0.90),
            p99_ns: q(0.99),
            max_ns: samples_ns[n - 1],
        });
    }
    out
}

/// Next unused sequence number for `BENCH_<seq>.json` in `dir`.
pub fn next_bench_seq(dir: &Path) -> u32 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .filter_map(Result::ok)
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            name.strip_prefix("BENCH_")?
                .strip_suffix(".json")?
                .parse::<u32>()
                .ok()
        })
        .map(|seq| seq + 1)
        .max()
        .unwrap_or(0)
}

/// Writes `BENCH_<seq>.json` into `dir` and returns its path.
///
/// # Errors
///
/// Propagates the underlying file write failure.
pub fn write_bench_report(
    dir: &Path,
    seq: u32,
    run_id: &str,
    cfg: &BenchConfig,
    stats: &[KernelStats],
) -> std::io::Result<PathBuf> {
    let mut s = String::with_capacity(1024);
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema_version\": {BENCH_SCHEMA_VERSION},");
    let _ = writeln!(s, "  \"seq\": {seq},");
    let _ = writeln!(s, "  \"run_id\": {},", json_str(run_id));
    let _ = writeln!(s, "  \"warmup_iters\": {},", cfg.warmup_iters);
    s.push_str("  \"kernels\": [\n");
    for (i, k) in stats.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": {}, \"iters\": {}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \
             \"p50_ns\": {:.1}, \"p90_ns\": {:.1}, \"p99_ns\": {:.1}, \"max_ns\": {:.1}}}",
            json_str(&k.name),
            k.iters,
            k.mean_ns,
            k.min_ns,
            k.p50_ns,
            k.p90_ns,
            k.p99_ns,
            k.max_ns
        );
        s.push_str(if i + 1 < stats.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    let path = dir.join(format!("BENCH_{seq}.json"));
    std::fs::write(&path, s)?;
    Ok(path)
}

/// Reads a `BENCH_<seq>.json` back into kernel statistics.
///
/// # Errors
///
/// Returns a human-readable message on I/O failure, malformed JSON, a
/// too-new `schema_version`, or rows missing required fields.
pub fn read_bench_report(path: &Path) -> Result<(String, Vec<KernelStats>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let doc = parse_json(&text).map_err(|e| format!("not valid JSON: {e}"))?;
    let version = doc
        .get("schema_version")
        .and_then(JsonValue::as_u64)
        .ok_or("missing schema_version")?;
    if version > u64::from(BENCH_SCHEMA_VERSION) {
        return Err(format!(
            "schema_version {version} is newer than supported {BENCH_SCHEMA_VERSION}"
        ));
    }
    let run_id = doc
        .get("run_id")
        .and_then(JsonValue::as_str)
        .ok_or("missing run_id")?
        .to_string();
    let kernels = doc
        .get("kernels")
        .and_then(JsonValue::as_arr)
        .ok_or("missing kernels array")?;
    let mut out = Vec::with_capacity(kernels.len());
    for (i, k) in kernels.iter().enumerate() {
        let f = |key: &str| {
            k.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("kernel {i}: missing {key}"))
        };
        out.push(KernelStats {
            name: k
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("kernel {i}: missing name"))?
                .to_string(),
            iters: k
                .get("iters")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("kernel {i}: missing iters"))? as u32,
            mean_ns: f("mean_ns")?,
            min_ns: f("min_ns")?,
            p50_ns: f("p50_ns")?,
            p90_ns: f("p90_ns")?,
            p99_ns: f("p99_ns")?,
            max_ns: f("max_ns")?,
        });
    }
    Ok((run_id, out))
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_kernels() -> Vec<BenchKernel> {
        vec![
            BenchKernel::new("test/spin", || {
                std::hint::black_box((0..100).sum::<u64>());
            }),
            BenchKernel::new("test/noop", || {}),
            BenchKernel::new("other/skip_me", || {}),
        ]
    }

    #[test]
    fn harness_times_and_orders_quantiles() {
        let cfg = BenchConfig {
            warmup_iters: 1,
            iters: 20,
            filter: None,
        };
        let stats = run_benchmarks(fake_kernels(), &cfg);
        assert_eq!(stats.len(), 3);
        for k in &stats {
            assert_eq!(k.iters, 20);
            assert!(k.min_ns <= k.p50_ns, "{k:?}");
            assert!(k.p50_ns <= k.p90_ns, "{k:?}");
            assert!(k.p90_ns <= k.p99_ns, "{k:?}");
            assert!(k.p99_ns <= k.max_ns, "{k:?}");
            assert!(k.mean_ns >= k.min_ns && k.mean_ns <= k.max_ns, "{k:?}");
        }
    }

    #[test]
    fn the_filter_selects_by_substring() {
        let cfg = BenchConfig {
            warmup_iters: 0,
            iters: 2,
            filter: Some("test/".into()),
        };
        let stats = run_benchmarks(fake_kernels(), &cfg);
        let names: Vec<&str> = stats.iter().map(|k| k.name.as_str()).collect();
        assert_eq!(names, ["test/spin", "test/noop"]);
    }

    #[test]
    fn reports_round_trip_and_the_sequence_advances() {
        let dir = std::env::temp_dir().join("opad_obs_bench_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir is creatable");
        assert_eq!(next_bench_seq(&dir), 0);
        let cfg = BenchConfig::default();
        let stats = run_benchmarks(fake_kernels(), &cfg);
        let path = write_bench_report(&dir, 0, "abc-dirty", &cfg, &stats).expect("report writes");
        assert_eq!(
            path.file_name().and_then(|n| n.to_str()),
            Some("BENCH_0.json")
        );
        assert_eq!(next_bench_seq(&dir), 1);
        let (run_id, back) = read_bench_report(&path).expect("report parses back");
        assert_eq!(run_id, "abc-dirty");
        assert_eq!(back.len(), stats.len());
        for (a, b) in back.iter().zip(&stats) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.iters, b.iters);
            // Values were rounded to 0.1 ns on write.
            assert!((a.p99_ns - b.p99_ns).abs() <= 0.05 + 1e-9);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_newer_bench_schema_is_rejected() {
        let dir = std::env::temp_dir().join("opad_obs_bench_ver_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir is creatable");
        let path = dir.join("BENCH_9.json");
        std::fs::write(
            &path,
            "{\"schema_version\": 99, \"run_id\": \"x\", \"kernels\": []}",
        )
        .expect("fixture writes");
        let err = read_bench_report(&path).expect_err("version 99 must be rejected");
        assert!(err.contains("newer than supported"), "{err}");
        assert_eq!(next_bench_seq(&dir), 10);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
