//! The `obsctl` command-line front end, as a testable library function.
//!
//! `run` takes the argument vector, an environment handle (how to reach
//! the kernel registry and the run id — injected so tests can use
//! synthetic kernels), and an output writer. It returns the process exit
//! code: `0` clean, `1` gate failure (regression or selfcheck error),
//! `2` usage or I/O error.

use crate::alerts::cmd_alerts;
use crate::bench::{
    json_str, next_bench_seq, read_bench_report, run_benchmarks, write_bench_report, BenchConfig,
};
use crate::diff::{diff_runs, DiffConfig};
use crate::envelope::{read_envelope, Envelope};
use crate::flame::{collapsed_stacks, FlameMode};
use crate::metrics::metrics_from_run;
use crate::perf::{gate, history, load_series, report_json, report_md, GateConfig};
use crate::selfcheck::selfcheck_dir;
use crate::tree::{aggregate_spans, critical_path, SpanTree};
use crate::watch::{cmd_series, cmd_watch};
use opad_telemetry::{parse_trace, BenchKernel, BenchProvenance, Trace};
use std::io::Write;
use std::path::{Path, PathBuf};

/// What the CLI needs from the outside world.
pub struct CliEnv {
    /// Builds the workspace kernel registry (linked in by the binary;
    /// tests inject synthetic kernels).
    pub kernels: Box<dyn FnOnce() -> Vec<BenchKernel>>,
    /// Produces the run id stamped into bench snapshots (the binary
    /// passes `opad_bench::run_id`, reusing the envelope convention).
    pub run_id: Box<dyn Fn() -> String>,
}

const USAGE: &str = "\
obsctl — trace analytics over opad run artefacts

usage:
  obsctl summary <results/EXP.json> [--json]
                                            per-run span tree + budget breakdown
                                            (--json: machine-readable rollup)
  obsctl flame <results/EXP.json|trace.jsonl> [--self|--total]
                                            collapsed stacks (µs) for flamegraph renderers
  obsctl diff <a.json> <b.json> [--threshold 0.2]
                                            regression gate (non-zero exit on regression)
  obsctl bench [--iters N] [--warmup N] [--filter SUBSTR] [--out DIR]
                                            run kernel micro-benchmarks, write BENCH_<seq>.json
  obsctl perf history [bench_dir]           per-kernel trend across all BENCH snapshots
  obsctl perf gate [bench_dir | <base.json> <cand.json>] [--rel 0.25] [--abs-ns 10000]
                                            variance-aware bench regression gate
                                            (non-zero exit on regression; skips with
                                            notice when fewer than two snapshots exist)
  obsctl perf report [bench_dir] [--json|--md]
                                            trajectory report for CI / PR comments
  obsctl alerts check <rules-file>          parse an alert rule file and validate
                                            metric names against the vocabulary
  obsctl alerts replay <rules-file> <stream.jsonl|envelope.json> [--expect name=state,...]
                                            deterministic rule replay over a recorded
                                            sample stream or run envelope (non-zero
                                            exit when an expectation fails)
  obsctl watch <stream.jsonl|--addr HOST:PORT> [--series a,b] [--window DUR] [--once] [--interval MS]
                                            terminal sparklines over the history plane
                                            (recorded stream or a live /timeseries)
  obsctl series export <stream.jsonl|--addr HOST:PORT> [--out FILE]
                                            ring contents as replayable sample-stream JSONL
  obsctl list [results_dir]                 discover every run envelope
  obsctl selfcheck [results_dir] [bench_dir]
                                            validate all artefacts against their schema versions
  obsctl help                               this text";

/// Entry point shared by the binary and the tests.
pub fn run(args: &[String], env: CliEnv, out: &mut dyn Write) -> i32 {
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let rest = &args[1.min(args.len())..];
    match cmd {
        "summary" => cmd_summary(rest, out),
        "flame" => cmd_flame(rest, out),
        "diff" => cmd_diff(rest, out),
        "bench" => cmd_bench(rest, env, out),
        "perf" => cmd_perf(rest, out),
        "alerts" => cmd_alerts(rest, out),
        "watch" => cmd_watch(rest, out),
        "series" => cmd_series(rest, out),
        "list" => cmd_list(rest, out),
        "selfcheck" => cmd_selfcheck(rest, out),
        "help" | "--help" | "-h" => {
            let _ = writeln!(out, "{USAGE}");
            0
        }
        other => {
            let _ = writeln!(out, "unknown command {other:?}\n{USAGE}");
            2
        }
    }
}

/// `<exp>.json` → sibling `<exp>_trace.jsonl`.
fn trace_path_for(envelope_path: &Path) -> PathBuf {
    let stem = envelope_path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or_default();
    envelope_path.with_file_name(format!("{stem}_trace.jsonl"))
}

fn load_run(path: &Path, out: &mut dyn Write) -> Option<(Envelope, Option<Trace>)> {
    let envelope = match read_envelope(path) {
        Ok(e) => e,
        Err(e) => {
            let _ = writeln!(out, "error: {}: {e}", path.display());
            return None;
        }
    };
    let trace = std::fs::read_to_string(trace_path_for(path))
        .ok()
        .map(|text| parse_trace(&text));
    Some((envelope, trace))
}

fn cmd_summary(args: &[String], out: &mut dyn Write) -> i32 {
    let json = args.iter().any(|a| a == "--json");
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        let _ = writeln!(out, "usage: obsctl summary <results/EXP.json> [--json]");
        return 2;
    };
    let Some((env, trace)) = load_run(Path::new(path), out) else {
        return 2;
    };
    if json {
        let tree = trace
            .as_ref()
            .map(|t| aggregate_spans(&t.events))
            .unwrap_or_else(|| aggregate_spans(&[]));
        let _ = writeln!(out, "{}", summary_json(&env, &tree));
        return 0;
    }
    let _ = writeln!(
        out,
        "run {} — experiment {} (envelope v{})",
        env.run_id, env.experiment, env.schema_version
    );
    for (name, rows) in &env.sections {
        let size = rows
            .as_arr()
            .map(|a| format!("{} rows", a.len()))
            .unwrap_or_else(|| "1 value".to_string());
        let _ = writeln!(out, "  section {name}: {size}");
    }
    if let Some(t) = &env.telemetry {
        let _ = writeln!(
            out,
            "  telemetry: {:.0} ms wall, {} events ({:.0} events/s)",
            t.wall_ms, t.events, t.events_per_sec
        );
        for (name, total) in &t.counters {
            let _ = writeln!(out, "    counter {name:<32} {total}");
        }
        for (name, value) in &t.gauges {
            let _ = writeln!(out, "    gauge   {name:<32} {value:.6}");
        }
        for h in &t.histograms {
            let _ = writeln!(
                out,
                "    hist    {:<32} n={} p50={:.2} p90={:.2} p99={:.2}",
                h.name, h.count, h.p50, h.p90, h.p99
            );
        }
    } else {
        let _ = writeln!(out, "  telemetry: none recorded (legacy envelope?)");
    }
    match trace {
        Some(trace) => {
            if trace.truncated {
                let _ = writeln!(out, "  note: trace ends mid-line (crashed run?)");
            }
            for (line, err) in &trace.errors {
                let _ = writeln!(out, "  note: trace line {line}: {err}");
            }
            let tree = aggregate_spans(&trace.events);
            print_tree(&tree, out);
            print_budget(&tree, out);
        }
        None => {
            let _ = writeln!(
                out,
                "  trace: no {} found",
                trace_path_for(Path::new(path)).display()
            );
        }
    }
    0
}

/// Renders the aggregated wall-time tree with self/total attribution and
/// the critical path.
fn print_tree(tree: &SpanTree, out: &mut dyn Write) {
    if tree.children.is_empty() {
        let _ = writeln!(out, "  spans: none completed in trace");
        return;
    }
    let run_total: f64 = tree.children.iter().map(|c| c.total_ms).sum();
    let _ = writeln!(out, "  span tree (total / self, % of run):");
    tree.walk(&mut |depth, node| {
        let pct = if run_total > 0.0 {
            100.0 * node.total_ms / run_total
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "    {:indent$}{:<20} x{:<5} {:>10.1} ms / {:>9.1} ms  {:>5.1}%",
            "",
            node.name,
            node.count,
            node.total_ms,
            node.self_ms,
            pct,
            indent = depth * 2
        );
    });
    let path = critical_path(tree);
    let rendered: Vec<String> = path
        .iter()
        .map(|(n, ms)| format!("{n} ({ms:.1} ms)"))
        .collect();
    let _ = writeln!(out, "  critical path: {}", rendered.join(" > "));
}

/// Per-step budget breakdown of the testing loop: how the `round` wall
/// time splits over the Fig. 1 steps.
fn print_budget(tree: &SpanTree, out: &mut dyn Write) {
    let Some(round) = tree.child("round") else {
        return;
    };
    let _ = writeln!(
        out,
        "  budget breakdown over {} round(s), {:.1} ms total:",
        round.count, round.total_ms
    );
    let mut rows: Vec<(&str, f64)> = round
        .children
        .iter()
        .map(|c| (c.name.as_str(), c.total_ms))
        .collect();
    rows.push(("(round overhead)", round.self_ms));
    for (name, ms) in rows {
        let pct = if round.total_ms > 0.0 {
            100.0 * ms / round.total_ms
        } else {
            0.0
        };
        let _ = writeln!(out, "    {name:<20} {ms:>10.1} ms  {pct:>5.1}%");
    }
}

/// Machine-readable span-tree rollup (`summary --json`): flat span list
/// keyed by `;`-joined name path, plus the critical path — the same
/// numbers the human-readable tree prints, for CI and `opad-serve`.
fn summary_json(env: &Envelope, tree: &SpanTree) -> String {
    let mut spans = Vec::new();
    let mut prefix: Vec<String> = Vec::new();
    fn walk_paths(node: &SpanTree, prefix: &mut Vec<String>, spans: &mut Vec<String>) {
        prefix.push(node.name.clone());
        spans.push(format!(
            "{{\"path\":{},\"count\":{},\"total_ms\":{},\"self_ms\":{}}}",
            json_str(&prefix.join(";")),
            node.count,
            node.total_ms,
            node.self_ms
        ));
        for c in &node.children {
            walk_paths(c, prefix, spans);
        }
        prefix.pop();
    }
    for c in &tree.children {
        walk_paths(c, &mut prefix, &mut spans);
    }
    let path: Vec<String> = critical_path(tree)
        .iter()
        .map(|(n, ms)| format!("{{\"name\":{},\"total_ms\":{ms}}}", json_str(n)))
        .collect();
    let wall = env
        .telemetry
        .as_ref()
        .map(|t| t.wall_ms.to_string())
        .unwrap_or_else(|| "null".to_string());
    format!(
        "{{\"run_id\":{},\"experiment\":{},\"schema_version\":{},\"wall_ms\":{},\"spans\":[{}],\"critical_path\":[{}]}}",
        json_str(&env.run_id),
        json_str(&env.experiment),
        env.schema_version,
        wall,
        spans.join(","),
        path.join(",")
    )
}

fn cmd_flame(args: &[String], out: &mut dyn Write) -> i32 {
    let mut mode = FlameMode::SelfTime;
    let mut path: Option<&str> = None;
    for a in args {
        match a.as_str() {
            "--self" => mode = FlameMode::SelfTime,
            "--total" => mode = FlameMode::TotalTime,
            other if !other.starts_with("--") => path = Some(other),
            other => {
                let _ = writeln!(out, "error: unknown flame flag {other:?}");
                return 2;
            }
        }
    }
    let Some(path) = path else {
        let _ = writeln!(
            out,
            "usage: obsctl flame <results/EXP.json|trace.jsonl> [--self|--total]"
        );
        return 2;
    };
    let path = Path::new(path);
    // Accept a trace directly, or an envelope whose sibling trace we find.
    let trace_path = if path.extension().and_then(|e| e.to_str()) == Some("jsonl") {
        path.to_path_buf()
    } else {
        trace_path_for(path)
    };
    let text = match std::fs::read_to_string(&trace_path) {
        Ok(t) => t,
        Err(e) => {
            let _ = writeln!(out, "error: {}: {e}", trace_path.display());
            return 2;
        }
    };
    let trace = parse_trace(&text);
    let tree = aggregate_spans(&trace.events);
    let lines = collapsed_stacks(&tree, mode);
    if lines.is_empty() {
        let _ = writeln!(out, "no completed spans in {}", trace_path.display());
        return 1;
    }
    for line in lines {
        let _ = writeln!(out, "{line}");
    }
    0
}

fn cmd_diff(args: &[String], out: &mut dyn Write) -> i32 {
    let mut paths = Vec::new();
    let mut cfg = DiffConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threshold" {
            match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t > 0.0 => cfg.threshold = t,
                _ => {
                    let _ = writeln!(out, "error: --threshold needs a positive number");
                    return 2;
                }
            }
        } else {
            paths.push(a.clone());
        }
    }
    let [a, b] = paths.as_slice() else {
        let _ = writeln!(
            out,
            "usage: obsctl diff <a.json> <b.json> [--threshold 0.2]"
        );
        return 2;
    };
    let Some((env_a, trace_a)) = load_run(Path::new(a), out) else {
        return 2;
    };
    let Some((env_b, trace_b)) = load_run(Path::new(b), out) else {
        return 2;
    };
    let tree = |t: Option<Trace>| aggregate_spans(&t.map(|t| t.events).unwrap_or_default());
    let ma = metrics_from_run(&env_a, &tree(trace_a));
    let mb = metrics_from_run(&env_b, &tree(trace_b));
    let report = diff_runs(&ma, &mb, &cfg);
    let _ = writeln!(out, "{report}");
    i32::from(report.any_regression())
}

fn cmd_bench(args: &[String], env: CliEnv, out: &mut dyn Write) -> i32 {
    let mut cfg = BenchConfig::default();
    let mut out_dir = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--iters" => match it.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) if n > 0 => cfg.iters = n,
                _ => {
                    let _ = writeln!(out, "error: --iters needs a positive integer");
                    return 2;
                }
            },
            "--warmup" => match it.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) => cfg.warmup_iters = n,
                None => {
                    let _ = writeln!(out, "error: --warmup needs a non-negative integer");
                    return 2;
                }
            },
            "--filter" => match it.next() {
                Some(f) => cfg.filter = Some(f.clone()),
                None => {
                    let _ = writeln!(out, "error: --filter needs a substring");
                    return 2;
                }
            },
            "--out" => match it.next() {
                Some(d) => out_dir = PathBuf::from(d),
                None => {
                    let _ = writeln!(out, "error: --out needs a directory");
                    return 2;
                }
            },
            other => {
                let _ = writeln!(out, "error: unknown bench flag {other:?}");
                return 2;
            }
        }
    }
    let kernels = (env.kernels)();
    let _ = writeln!(
        out,
        "benchmarking {} kernel(s): warmup {}, iters {}",
        kernels.len(),
        cfg.warmup_iters,
        cfg.iters
    );
    let stats = run_benchmarks(kernels, &cfg);
    for k in &stats {
        let _ = writeln!(
            out,
            "  {:<32} p50 {:>12.0} ns   p90 {:>12.0} ns   p99 {:>12.0} ns",
            k.name, k.p50_ns, k.p90_ns, k.p99_ns
        );
    }
    let seq = next_bench_seq(&out_dir);
    let run_id = (env.run_id)();
    // The run id is already the git-describe identifier of the working
    // tree, so it doubles as the provenance commit.
    let provenance = BenchProvenance::capture(&run_id);
    match write_bench_report(&out_dir, seq, &run_id, &cfg, &provenance, &stats) {
        Ok(path) => {
            let _ = writeln!(out, "wrote {}", path.display());
            0
        }
        Err(e) => {
            let _ = writeln!(out, "error: cannot write bench report: {e}");
            2
        }
    }
}

const PERF_USAGE: &str = "\
usage:
  obsctl perf history [bench_dir]
  obsctl perf gate [bench_dir | <base.json> <cand.json>] [--rel 0.25] [--abs-ns 10000]
  obsctl perf report [bench_dir] [--json|--md]";

fn cmd_perf(args: &[String], out: &mut dyn Write) -> i32 {
    let Some(sub) = args.first().map(String::as_str) else {
        let _ = writeln!(out, "{PERF_USAGE}");
        return 2;
    };
    let rest = &args[1..];
    match sub {
        "history" => cmd_perf_history(rest, out),
        "gate" => cmd_perf_gate(rest, out),
        "report" => cmd_perf_report(rest, out),
        other => {
            let _ = writeln!(out, "unknown perf command {other:?}\n{PERF_USAGE}");
            2
        }
    }
}

fn warn_skipped(skipped: &[(String, String)], out: &mut dyn Write) {
    for (file, why) in skipped {
        let _ = writeln!(out, "warn: skipping {file}: {why}");
    }
}

fn cmd_perf_history(args: &[String], out: &mut dyn Write) -> i32 {
    let dir = PathBuf::from(args.first().map(String::as_str).unwrap_or("."));
    let series = load_series(&dir);
    warn_skipped(&series.skipped, out);
    if series.snapshots.is_empty() {
        let _ = writeln!(out, "no BENCH_<seq>.json snapshots under {}", dir.display());
        return 0;
    }
    let _ = writeln!(out, "perf history: {} snapshot(s)", series.snapshots.len());
    for s in &series.snapshots {
        let prov = s
            .provenance
            .as_ref()
            .map(|p| {
                format!(
                    "commit {}, {} core(s), OPAD_THREADS={}",
                    p.git_commit,
                    p.cores,
                    p.opad_threads
                        .map(|n| n.to_string())
                        .unwrap_or_else(|| "unset".to_string())
                )
            })
            .unwrap_or_else(|| "no provenance (v1 snapshot)".to_string());
        let _ = writeln!(
            out,
            "  BENCH_{:04}  run {:<16} {} kernel(s)  [{prov}]",
            s.seq,
            s.run_id,
            s.kernels.len()
        );
    }
    let _ = writeln!(
        out,
        "  {:<32} {:>14} {:>14} {:>9} {:>7}",
        "kernel", "base min_ns", "latest min_ns", "change", "points"
    );
    for t in history(&series) {
        let (Some(first), Some(last)) = (t.points.first(), t.points.last()) else {
            continue;
        };
        let change = if t.points.len() < 2 {
            "-".to_string()
        } else {
            format!("{:+.1}%", t.rel_change() * 100.0)
        };
        let _ = writeln!(
            out,
            "  {:<32} {:>14.0} {:>14.0} {:>9} {:>7}",
            t.name,
            first.min_ns,
            last.min_ns,
            change,
            t.points.len()
        );
    }
    0
}

fn cmd_perf_gate(args: &[String], out: &mut dyn Write) -> i32 {
    let mut cfg = GateConfig::default();
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rel" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t > 0.0 => cfg.rel_threshold = t,
                _ => {
                    let _ = writeln!(out, "error: --rel needs a positive number");
                    return 2;
                }
            },
            "--abs-ns" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => cfg.abs_floor_ns = t,
                _ => {
                    let _ = writeln!(out, "error: --abs-ns needs a non-negative number");
                    return 2;
                }
            },
            other if !other.starts_with("--") => paths.push(other.to_string()),
            other => {
                let _ = writeln!(out, "error: unknown perf gate flag {other:?}");
                return 2;
            }
        }
    }
    let (base, cand) = match paths.as_slice() {
        // Two explicit snapshot files: gate exactly those.
        [a, b] => {
            let base = match read_bench_report(Path::new(a)) {
                Ok(r) => r,
                Err(e) => {
                    let _ = writeln!(out, "error: {a}: {e}");
                    return 2;
                }
            };
            let cand = match read_bench_report(Path::new(b)) {
                Ok(r) => r,
                Err(e) => {
                    let _ = writeln!(out, "error: {b}: {e}");
                    return 2;
                }
            };
            (base, cand)
        }
        // A directory (or nothing): baseline = lowest seq, candidate =
        // highest. Fewer than two snapshots is not a failure — fresh
        // clones have only the committed baseline.
        [] | [_] => {
            let dir = PathBuf::from(paths.first().map(String::as_str).unwrap_or("."));
            let series = load_series(&dir);
            warn_skipped(&series.skipped, out);
            if series.snapshots.len() < 2 {
                let _ = writeln!(
                    out,
                    "perf gate: skipped — need at least 2 snapshots under {}, found {}",
                    dir.display(),
                    series.snapshots.len()
                );
                return 0;
            }
            let base = series.snapshots.first().expect("len >= 2").clone();
            let cand = series.snapshots.last().expect("len >= 2").clone();
            (base, cand)
        }
        _ => {
            let _ = writeln!(out, "{PERF_USAGE}");
            return 2;
        }
    };
    let report = gate(&base, &cand, &cfg);
    let _ = writeln!(out, "{report}");
    i32::from(report.any_regression())
}

fn cmd_perf_report(args: &[String], out: &mut dyn Write) -> i32 {
    let mut json = false;
    let mut dir = PathBuf::from(".");
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            "--md" => json = false,
            other if !other.starts_with("--") => dir = PathBuf::from(other),
            other => {
                let _ = writeln!(out, "error: unknown perf report flag {other:?}");
                return 2;
            }
        }
    }
    let series = load_series(&dir);
    if !json {
        warn_skipped(&series.skipped, out);
    }
    if series.snapshots.is_empty() && !json {
        let _ = writeln!(out, "no BENCH_<seq>.json snapshots under {}", dir.display());
        return 0;
    }
    let rendered = if json {
        report_json(&series)
    } else {
        report_md(&series)
    };
    let _ = writeln!(out, "{}", rendered.trim_end());
    0
}

fn cmd_list(args: &[String], out: &mut dyn Write) -> i32 {
    let dir = PathBuf::from(args.first().map(String::as_str).unwrap_or("results"));
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .into_iter()
        .flatten()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.extension().and_then(|e| e.to_str()) == Some("json")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| !n.starts_with("BENCH_"))
        })
        .collect();
    entries.sort();
    if entries.is_empty() {
        let _ = writeln!(out, "no run envelopes under {}", dir.display());
        return 0;
    }
    let _ = writeln!(
        out,
        "{:<28} {:<16} {:>9} {:>9}  sections",
        "experiment", "run_id", "wall_ms", "trace"
    );
    for path in entries {
        match read_envelope(&path) {
            Ok(env) => {
                let wall = env
                    .telemetry
                    .as_ref()
                    .map(|t| format!("{:.0}", t.wall_ms))
                    .unwrap_or_else(|| "-".to_string());
                let trace = if trace_path_for(&path).exists() {
                    "yes"
                } else {
                    "-"
                };
                let sections: Vec<&str> = env.sections.iter().map(|(k, _)| k.as_str()).collect();
                let _ = writeln!(
                    out,
                    "{:<28} {:<16} {:>9} {:>9}  {}",
                    env.experiment,
                    env.run_id,
                    wall,
                    trace,
                    sections.join(", ")
                );
            }
            Err(e) => {
                let _ = writeln!(
                    out,
                    "{:<28} ! {e}",
                    path.file_name().and_then(|n| n.to_str()).unwrap_or("?")
                );
            }
        }
    }
    0
}

fn cmd_selfcheck(args: &[String], out: &mut dyn Write) -> i32 {
    let results = PathBuf::from(args.first().map(String::as_str).unwrap_or("results"));
    let bench = PathBuf::from(args.get(1).map(String::as_str).unwrap_or("."));
    let outcome = selfcheck_dir(&results, &bench);
    let _ = writeln!(out, "{}", outcome.render());
    i32::from(!outcome.passed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_is_printed_for_no_or_unknown_commands() {
        let env = || CliEnv {
            kernels: Box::new(Vec::new),
            run_id: Box::new(|| "test".to_string()),
        };
        let mut out = Vec::new();
        assert_eq!(run(&[], env(), &mut out), 0);
        assert!(String::from_utf8(out).expect("utf8").contains("usage:"));
        let mut out = Vec::new();
        assert_eq!(run(&["frobnicate".to_string()], env(), &mut out), 2);
    }

    #[test]
    fn trace_paths_derive_from_the_envelope_name() {
        assert_eq!(
            trace_path_for(Path::new("results/exp2_detection_efficiency.json")),
            Path::new("results/exp2_detection_efficiency_trace.jsonl")
        );
    }
}
