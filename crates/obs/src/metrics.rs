//! The run-level metrics `obsctl diff` compares.

use crate::envelope::{Envelope, TelemetrySummary};
use crate::tree::SpanTree;

/// Performance metrics of one run, extracted from its envelope telemetry
/// (preferred) with the aggregated trace tree as a fallback for wall
/// time. `NaN` marks a metric the run did not record; diffs skip those.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Run id the metrics came from.
    pub run_id: String,
    /// Whole-run wall clock, ms.
    pub wall_ms: f64,
    /// Median PGD iterations to success.
    pub iters_p50: f64,
    /// 90th percentile PGD iterations to success.
    pub iters_p90: f64,
    /// 99th percentile PGD iterations to success.
    pub iters_p99: f64,
    /// Attacked seeds per wall-clock second.
    pub seeds_per_sec: f64,
    /// Adversarial examples found per wall-clock second.
    pub aes_per_sec: f64,
    /// Testing-loop rounds until the run stopped (pfd-convergence
    /// rounds for target-driven experiments).
    pub rounds: f64,
}

/// Extracts comparable metrics from a run's envelope and aggregated span
/// tree (pass the tree from [`crate::aggregate_spans`] when a trace file
/// exists, or an empty tree otherwise).
pub fn metrics_from_run(envelope: &Envelope, tree: &SpanTree) -> RunMetrics {
    let t = envelope.telemetry.clone().unwrap_or_default();
    let wall_ms = if t.wall_ms > 0.0 {
        t.wall_ms
    } else {
        tree.children.iter().map(|c| c.total_ms).sum::<f64>()
    };
    let iters = histogram(&t, "attack.pgd.iters_to_success");
    let rounds = span_count(&t, "round")
        .or_else(|| tree.child("round").map(|n| n.count))
        .map_or(f64::NAN, |c| c as f64);
    RunMetrics {
        run_id: envelope.run_id.clone(),
        wall_ms: if wall_ms > 0.0 { wall_ms } else { f64::NAN },
        iters_p50: iters.map_or(f64::NAN, |h| h.0),
        iters_p90: iters.map_or(f64::NAN, |h| h.1),
        iters_p99: iters.map_or(f64::NAN, |h| h.2),
        seeds_per_sec: per_sec(&t, "pipeline.seeds_attacked", wall_ms),
        aes_per_sec: per_sec(&t, "pipeline.aes_found", wall_ms),
        rounds,
    }
}

fn histogram(t: &TelemetrySummary, name: &str) -> Option<(f64, f64, f64)> {
    t.histograms
        .iter()
        .find(|h| h.name == name)
        .map(|h| (h.p50, h.p90, h.p99))
}

fn span_count(t: &TelemetrySummary, name: &str) -> Option<u64> {
    t.spans.iter().find(|s| s.name == name).map(|s| s.count)
}

fn per_sec(t: &TelemetrySummary, counter: &str, wall_ms: f64) -> f64 {
    let total = t
        .counters
        .iter()
        .find(|(n, _)| n == counter)
        .map(|(_, v)| *v);
    match total {
        Some(v) if wall_ms > 0.0 => v as f64 / (wall_ms / 1000.0),
        _ => f64::NAN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::HistStat;
    use crate::tree::aggregate_spans;
    use opad_telemetry::JsonValue;

    fn envelope_with(t: Option<TelemetrySummary>) -> Envelope {
        Envelope {
            schema_version: 1,
            experiment: "exp_test".into(),
            run_id: "abc".into(),
            config: JsonValue::Null,
            telemetry: t,
            sections: Vec::new(),
        }
    }

    #[test]
    fn derives_rates_and_quantiles_from_the_summary() {
        let t = TelemetrySummary {
            wall_ms: 2000.0,
            counters: vec![
                ("pipeline.aes_found".into(), 30),
                ("pipeline.seeds_attacked".into(), 100),
            ],
            histograms: vec![HistStat {
                name: "attack.pgd.iters_to_success".into(),
                count: 30,
                min: 1.0,
                max: 15.0,
                mean: 6.0,
                p50: 5.0,
                p90: 11.0,
                p99: 14.0,
            }],
            ..TelemetrySummary::default()
        };
        let m = metrics_from_run(&envelope_with(Some(t)), &aggregate_spans(&[]));
        assert_eq!(m.wall_ms, 2000.0);
        assert_eq!(m.seeds_per_sec, 50.0);
        assert_eq!(m.aes_per_sec, 15.0);
        assert_eq!((m.iters_p50, m.iters_p90, m.iters_p99), (5.0, 11.0, 14.0));
        assert!(m.rounds.is_nan(), "no round spans recorded anywhere");
    }

    #[test]
    fn falls_back_to_the_trace_tree_when_telemetry_is_absent() {
        let events = vec![
            opad_telemetry::Event::SpanEnd {
                id: 1,
                parent: None,
                name: "round".into(),
                t_ms: 0.0,
                wall_ms: 500.0,
            },
            opad_telemetry::Event::SpanEnd {
                id: 2,
                parent: None,
                name: "round".into(),
                t_ms: 0.0,
                wall_ms: 700.0,
            },
        ];
        let m = metrics_from_run(&envelope_with(None), &aggregate_spans(&events));
        assert_eq!(m.wall_ms, 1200.0);
        assert_eq!(m.rounds, 2.0);
        assert!(m.seeds_per_sec.is_nan());
    }
}
