//! Wall-time span trees over a parsed trace.
//!
//! Trace lines carry flat `span_start`/`span_end` events with parent ids;
//! this module rebuilds the hierarchy and aggregates it **by name path**
//! (all `round > fuzz` instances fold into one node), attributing to each
//! node its total wall time and the *self* share not covered by child
//! spans — which is what makes a budget breakdown readable.

use opad_telemetry::Event;

/// One aggregated node of the span tree, keyed by its name path from the
/// root.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanTree {
    /// Span name (one path segment).
    pub name: String,
    /// Completed instances folded into this node.
    pub count: u64,
    /// Sum of instance wall times, ms.
    pub total_ms: f64,
    /// Portion of `total_ms` not attributed to any child span, ms.
    pub self_ms: f64,
    /// Child nodes in first-seen order.
    pub children: Vec<SpanTree>,
}

impl SpanTree {
    fn new(name: &str) -> SpanTree {
        SpanTree {
            name: name.to_string(),
            count: 0,
            total_ms: 0.0,
            self_ms: 0.0,
            children: Vec::new(),
        }
    }

    fn child_mut(&mut self, name: &str) -> &mut SpanTree {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            return &mut self.children[i];
        }
        self.children.push(SpanTree::new(name));
        self.children.last_mut().expect("just pushed")
    }

    /// Looks up a direct child by name.
    pub fn child(&self, name: &str) -> Option<&SpanTree> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Depth-first walk: `visit(depth, node)` on every node below the
    /// (synthetic) root.
    pub fn walk(&self, visit: &mut impl FnMut(usize, &SpanTree)) {
        fn go(node: &SpanTree, depth: usize, visit: &mut impl FnMut(usize, &SpanTree)) {
            visit(depth, node);
            for c in &node.children {
                go(c, depth + 1, visit);
            }
        }
        for c in &self.children {
            go(c, 0, visit);
        }
    }
}

/// Folds a trace's completed spans into an aggregated tree.
///
/// The returned node is a synthetic root (`name` empty, zero times) whose
/// children are the top-level spans. Only `span_end` events contribute —
/// a span still open when the run died (truncated trace) has no wall time
/// to attribute. Parent links that point at a span with no recorded end
/// fall back to the root rather than vanishing.
pub fn aggregate_spans(events: &[Event]) -> SpanTree {
    // id → name-path (as indices would be fragile across aggregation,
    // store the resolved path of each *ended* span).
    let mut paths: std::collections::HashMap<u64, Vec<String>> = std::collections::HashMap::new();
    let mut root = SpanTree::new("");
    // Ends arrive child-before-parent (RAII drop order), so resolve each
    // span's path lazily from start events instead: collect starts first.
    let mut start_info: std::collections::HashMap<u64, (Option<u64>, &str)> =
        std::collections::HashMap::new();
    for e in events {
        if let Event::SpanStart {
            id, parent, name, ..
        } = e
        {
            start_info.insert(*id, (*parent, name));
        }
    }
    fn path_of(
        id: u64,
        start_info: &std::collections::HashMap<u64, (Option<u64>, &str)>,
        cache: &mut std::collections::HashMap<u64, Vec<String>>,
    ) -> Vec<String> {
        if let Some(p) = cache.get(&id) {
            return p.clone();
        }
        let path = match start_info.get(&id) {
            Some((Some(parent), name)) => {
                let mut p = path_of(*parent, start_info, cache);
                p.push((*name).to_string());
                p
            }
            Some((None, name)) => vec![(*name).to_string()],
            None => Vec::new(),
        };
        cache.insert(id, path.clone());
        path
    }
    for e in events {
        if let Event::SpanEnd {
            id,
            parent,
            name,
            wall_ms,
            ..
        } = e
        {
            // Prefer the start-event chain; a trace that lost its starts
            // (filtered or truncated head) still places the span under
            // its parent when that parent also ended.
            let mut path = path_of(*id, &start_info, &mut paths);
            if path.is_empty() {
                if let Some(pid) = parent {
                    path = path_of(*pid, &start_info, &mut paths);
                }
                path.push(name.clone());
            }
            let mut node = &mut root;
            for seg in &path {
                node = node.child_mut(seg);
            }
            node.count += 1;
            node.total_ms += wall_ms;
        }
    }
    fn finish(node: &mut SpanTree) {
        let child_total: f64 = node.children.iter().map(|c| c.total_ms).sum();
        node.self_ms = (node.total_ms - child_total).max(0.0);
        for c in &mut node.children {
            finish(c);
        }
    }
    finish(&mut root);
    root.self_ms = 0.0;
    root
}

/// The critical path through an aggregated tree: from the root, follow
/// the child with the largest `total_ms` until a leaf. Returns the
/// `(name, total_ms)` chain.
pub fn critical_path(root: &SpanTree) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut node = root;
    while let Some(next) = node
        .children
        .iter()
        .max_by(|a, b| a.total_ms.total_cmp(&b.total_ms))
    {
        out.push((next.name.clone(), next.total_ms));
        node = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(id: u64, parent: Option<u64>, name: &str) -> Event {
        Event::SpanStart {
            id,
            parent,
            name: name.to_string(),
            t_ms: 0.0,
        }
    }

    fn end(id: u64, parent: Option<u64>, name: &str, wall_ms: f64) -> Event {
        Event::SpanEnd {
            id,
            parent,
            name: name.to_string(),
            t_ms: 0.0,
            wall_ms,
        }
    }

    /// Two rounds, each with fuzz + assess children; one nested span.
    fn sample_events() -> Vec<Event> {
        vec![
            start(1, None, "round"),
            start(2, Some(1), "fuzz"),
            end(2, Some(1), "fuzz", 60.0),
            start(3, Some(1), "assess"),
            start(4, Some(3), "mc"),
            end(4, Some(3), "mc", 10.0),
            end(3, Some(1), "assess", 30.0),
            end(1, None, "round", 100.0),
            start(5, None, "round"),
            start(6, Some(5), "fuzz"),
            end(6, Some(5), "fuzz", 80.0),
            end(5, None, "round", 90.0),
        ]
    }

    #[test]
    fn aggregates_by_name_path_with_self_attribution() {
        let root = aggregate_spans(&sample_events());
        assert_eq!(root.children.len(), 1);
        let round = root.child("round").expect("round aggregated");
        assert_eq!(round.count, 2);
        assert_eq!(round.total_ms, 190.0);
        let fuzz = round.child("fuzz").expect("fuzz under round");
        assert_eq!((fuzz.count, fuzz.total_ms), (2, 140.0));
        let assess = round.child("assess").expect("assess under round");
        assert_eq!(assess.total_ms, 30.0);
        assert_eq!(assess.child("mc").expect("nested").total_ms, 10.0);
        // self = 190 - (140 + 30)
        assert!((round.self_ms - 20.0).abs() < 1e-9);
        assert!((assess.self_ms - 20.0).abs() < 1e-9);
    }

    #[test]
    fn open_spans_do_not_contribute() {
        let mut events = sample_events();
        events.push(start(7, None, "round")); // crashed mid-round
        let root = aggregate_spans(&events);
        assert_eq!(root.child("round").expect("round").count, 2);
    }

    #[test]
    fn critical_path_follows_the_heaviest_chain() {
        let root = aggregate_spans(&sample_events());
        let path = critical_path(&root);
        let names: Vec<&str> = path.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["round", "fuzz"]);
        assert_eq!(path[1].1, 140.0);
    }

    #[test]
    fn walk_visits_depth_first() {
        let root = aggregate_spans(&sample_events());
        let mut seen = Vec::new();
        root.walk(&mut |d, n| seen.push((d, n.name.clone())));
        assert_eq!(seen[0], (0, "round".to_string()));
        assert!(seen.contains(&(2, "mc".to_string())));
    }
}
