//! The perf-trajectory subsystem behind `obsctl perf`.
//!
//! Loads the whole `BENCH_<seq>.json` series into per-kernel time series
//! and answers the three questions a perf PR needs answered:
//!
//! * `history` — how has each kernel trended across snapshots?
//! * `gate` — is the candidate snapshot a regression against the
//!   baseline, judged by a **variance-aware rule**: the robust min-of-N
//!   statistic compared under a relative threshold *and* an absolute
//!   nanosecond floor, with the relative threshold loosened when either
//!   side has few samples. Min-of-N because the minimum of repeated
//!   timings estimates the true cost with noise that only *adds* time
//!   (scheduler preemption, cache pollution) — the mean drags all of
//!   that noise into the comparison. The absolute floor keeps
//!   sub-microsecond kernels from flapping: a 30% swing on a 300 ns
//!   kernel is timer jitter, not a regression.
//! * `report` — the same trajectory as machine-readable JSON or a
//!   PR-comment-friendly markdown table.

use crate::bench::json_str;
use crate::bench::{read_bench_report, BenchReport, KernelStats};
use opad_telemetry::bench_files;
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// The `BENCH_<seq>.json` series found in one directory.
#[derive(Debug, Clone, Default)]
pub struct BenchSeries {
    /// Parsed snapshots, ascending by sequence number.
    pub snapshots: Vec<BenchReport>,
    /// `(file, reason)` for snapshots that failed to parse — surfaced,
    /// never silently dropped.
    pub skipped: Vec<(String, String)>,
}

impl BenchSeries {
    /// The lowest-sequence snapshot — the committed baseline by
    /// convention.
    pub fn baseline(&self) -> Option<&BenchReport> {
        self.snapshots.first()
    }

    /// The highest-sequence snapshot — the candidate under test.
    pub fn latest(&self) -> Option<&BenchReport> {
        self.snapshots.last()
    }
}

/// Loads every `BENCH_<seq>.json` under `dir` (padded and unpadded
/// names), sorted by sequence. Unreadable snapshots land in `skipped`.
pub fn load_series(dir: &Path) -> BenchSeries {
    let mut series = BenchSeries::default();
    for (_, path) in bench_files(dir) {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        match read_bench_report(&path) {
            Ok(report) => series.snapshots.push(report),
            Err(e) => series.skipped.push((name, e)),
        }
    }
    series
}

/// One kernel's timing at one snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrendPoint {
    /// Snapshot sequence number.
    pub seq: u32,
    /// Fastest iteration (the gate statistic).
    pub min_ns: f64,
    /// Median iteration.
    pub p50_ns: f64,
    /// Raw samples behind the quantiles.
    pub samples: u32,
}

/// One kernel's trajectory across the series.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTrend {
    /// Kernel name (`<crate>/<kernel>`).
    pub name: String,
    /// Per-snapshot points, ascending by sequence. Snapshots that did
    /// not record the kernel simply contribute no point.
    pub points: Vec<TrendPoint>,
}

impl KernelTrend {
    /// Relative change of `min_ns` between the first and last point
    /// (positive = slower), or `NaN` with fewer than two points.
    pub fn rel_change(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) if self.points.len() >= 2 && a.min_ns > 0.0 => {
                (b.min_ns - a.min_ns) / a.min_ns
            }
            _ => f64::NAN,
        }
    }
}

/// Pivots the series into per-kernel time series, kernel-name sorted.
pub fn history(series: &BenchSeries) -> Vec<KernelTrend> {
    let mut trends: Vec<KernelTrend> = Vec::new();
    for snap in &series.snapshots {
        for k in &snap.kernels {
            let point = TrendPoint {
                seq: snap.seq,
                min_ns: k.min_ns,
                p50_ns: k.p50_ns,
                samples: k.samples,
            };
            match trends.iter_mut().find(|t| t.name == k.name) {
                Some(t) => t.points.push(point),
                None => trends.push(KernelTrend {
                    name: k.name.clone(),
                    points: vec![point],
                }),
            }
        }
    }
    trends.sort_by(|a, b| a.name.cmp(&b.name));
    trends
}

/// Thresholds for the variance-aware regression rule.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Maximum tolerated relative slowdown of `min_ns` at the reference
    /// sample size (`0.25` = 25%).
    pub rel_threshold: f64,
    /// A change must also exceed this many nanoseconds in absolute terms
    /// — sub-microsecond kernels see relative swings that are pure timer
    /// jitter.
    pub abs_floor_ns: f64,
    /// Sample count at which `rel_threshold` applies unscaled; fewer
    /// samples loosen the threshold by `sqrt(ref_samples / samples)`
    /// (the min-of-N estimator tightens roughly with sample count, so a
    /// 5-sample snapshot must clear a wider bar than a 100-sample one).
    pub ref_samples: u32,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            rel_threshold: 0.25,
            abs_floor_ns: 10_000.0,
            ref_samples: 30,
        }
    }
}

impl GateConfig {
    /// The relative threshold after sample-size scaling: the smaller of
    /// the two sides' sample counts sets the noise level.
    pub fn effective_rel(&self, samples_a: u32, samples_b: u32) -> f64 {
        let n = samples_a.min(samples_b).max(1) as f64;
        let scale = (f64::from(self.ref_samples.max(1)) / n).sqrt().max(1.0);
        self.rel_threshold * scale
    }
}

/// How one kernel fared under the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateVerdict {
    /// Within thresholds.
    Ok,
    /// Faster by more than the thresholds.
    Improved,
    /// Slower by more than the thresholds — fails the gate.
    Regressed,
    /// In the baseline but absent from the candidate (renamed kernel or
    /// a filtered run) — reported, never a failure.
    Missing,
    /// In the candidate but absent from the baseline — the trajectory
    /// picks it up from here.
    New,
}

/// One gated kernel.
#[derive(Debug, Clone)]
pub struct GateRow {
    /// Kernel name.
    pub name: String,
    /// Baseline `min_ns` (`NaN` for new kernels).
    pub base_min_ns: f64,
    /// Candidate `min_ns` (`NaN` for missing kernels).
    pub cand_min_ns: f64,
    /// Relative change of `min_ns` (positive = slower), `NaN` when a
    /// side is absent.
    pub rel_change: f64,
    /// The sample-size-scaled relative threshold this row was judged
    /// against.
    pub eff_threshold: f64,
    /// The verdict.
    pub verdict: GateVerdict,
}

/// A full gate comparison between a baseline and a candidate snapshot.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Baseline sequence number.
    pub base_seq: u32,
    /// Candidate sequence number.
    pub cand_seq: u32,
    /// Baseline run id.
    pub base_run: String,
    /// Candidate run id.
    pub cand_run: String,
    /// Configuration the verdicts used.
    pub config: GateConfig,
    /// Every kernel seen on either side, baseline order then new ones.
    pub rows: Vec<GateRow>,
}

impl GateReport {
    /// True when any kernel regressed — the condition under which
    /// `obsctl perf gate` exits non-zero.
    pub fn any_regression(&self) -> bool {
        self.rows
            .iter()
            .any(|r| r.verdict == GateVerdict::Regressed)
    }
}

impl fmt::Display for GateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "perf gate: BENCH_{:04} (baseline, {}) vs BENCH_{:04} (candidate, {})",
            self.base_seq, self.base_run, self.cand_seq, self.cand_run
        )?;
        writeln!(
            f,
            "  rule: min-of-N, rel > {:.0}% (sample-scaled) AND abs > {} ns",
            self.config.rel_threshold * 100.0,
            self.config.abs_floor_ns
        )?;
        writeln!(
            f,
            "  {:<32} {:>14} {:>14} {:>9}  verdict",
            "kernel", "base min_ns", "cand min_ns", "change"
        )?;
        for r in &self.rows {
            let verdict = match r.verdict {
                GateVerdict::Ok => "ok",
                GateVerdict::Improved => "improved",
                GateVerdict::Regressed => "REGRESSED",
                GateVerdict::Missing => "missing",
                GateVerdict::New => "new",
            };
            let change = if r.rel_change.is_nan() {
                "-".to_string()
            } else {
                format!("{:+.1}%", r.rel_change * 100.0)
            };
            writeln!(
                f,
                "  {:<32} {:>14} {:>14} {:>9}  {verdict}",
                r.name,
                fmt_ns(r.base_min_ns),
                fmt_ns(r.cand_min_ns),
                change
            )?;
        }
        let verdict = if self.any_regression() {
            "REGRESSION"
        } else {
            "clean"
        };
        write!(f, "  overall: {verdict}")
    }
}

fn fmt_ns(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.0}")
    }
}

/// Applies the variance-aware rule to every kernel of the two snapshots.
pub fn gate(base: &BenchReport, cand: &BenchReport, cfg: &GateConfig) -> GateReport {
    let find = |side: &[KernelStats], name: &str| -> Option<KernelStats> {
        side.iter().find(|k| k.name == name).cloned()
    };
    let mut rows = Vec::with_capacity(base.kernels.len());
    for bk in &base.kernels {
        match find(&cand.kernels, &bk.name) {
            Some(ck) => {
                let eff = cfg.effective_rel(bk.samples, ck.samples);
                let delta = ck.min_ns - bk.min_ns;
                let rel = if bk.min_ns > 0.0 {
                    delta / bk.min_ns
                } else {
                    f64::NAN
                };
                let verdict = if rel.is_finite() && rel > eff && delta > cfg.abs_floor_ns {
                    GateVerdict::Regressed
                } else if rel.is_finite() && rel < -eff && -delta > cfg.abs_floor_ns {
                    GateVerdict::Improved
                } else {
                    GateVerdict::Ok
                };
                rows.push(GateRow {
                    name: bk.name.clone(),
                    base_min_ns: bk.min_ns,
                    cand_min_ns: ck.min_ns,
                    rel_change: rel,
                    eff_threshold: eff,
                    verdict,
                });
            }
            None => rows.push(GateRow {
                name: bk.name.clone(),
                base_min_ns: bk.min_ns,
                cand_min_ns: f64::NAN,
                rel_change: f64::NAN,
                eff_threshold: cfg.rel_threshold,
                verdict: GateVerdict::Missing,
            }),
        }
    }
    for ck in &cand.kernels {
        if find(&base.kernels, &ck.name).is_none() {
            rows.push(GateRow {
                name: ck.name.clone(),
                base_min_ns: f64::NAN,
                cand_min_ns: ck.min_ns,
                rel_change: f64::NAN,
                eff_threshold: cfg.rel_threshold,
                verdict: GateVerdict::New,
            });
        }
    }
    GateReport {
        base_seq: base.seq,
        cand_seq: cand.seq,
        base_run: base.run_id.clone(),
        cand_run: cand.run_id.clone(),
        config: *cfg,
        rows,
    }
}

/// The trajectory report as JSON: baseline/latest per kernel plus the
/// full per-snapshot series.
pub fn report_json(series: &BenchSeries) -> String {
    let trends = history(series);
    let mut kernels = Vec::with_capacity(trends.len());
    for t in &trends {
        let points: Vec<String> = t
            .points
            .iter()
            .map(|p| {
                format!(
                    "{{\"seq\":{},\"min_ns\":{},\"p50_ns\":{},\"samples\":{}}}",
                    p.seq,
                    json_num(p.min_ns),
                    json_num(p.p50_ns),
                    p.samples
                )
            })
            .collect();
        kernels.push(format!(
            "{{\"name\":{},\"rel_change\":{},\"points\":[{}]}}",
            json_str(&t.name),
            json_num(t.rel_change()),
            points.join(",")
        ));
    }
    format!(
        "{{\"baseline_seq\":{},\"latest_seq\":{},\"snapshots\":{},\"kernels\":[{}]}}",
        series.baseline().map(|s| s.seq).unwrap_or(0),
        series.latest().map(|s| s.seq).unwrap_or(0),
        series.snapshots.len(),
        kernels.join(",")
    )
}

/// The trajectory report as a markdown table — ready to paste into a PR
/// comment.
pub fn report_md(series: &BenchSeries) -> String {
    let trends = history(series);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "### Perf trajectory ({} snapshot{})",
        series.snapshots.len(),
        if series.snapshots.len() == 1 { "" } else { "s" }
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "| kernel | baseline min (ns) | latest min (ns) | change | latest p50 (ns) | samples |"
    );
    let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|");
    for t in &trends {
        let (Some(first), Some(last)) = (t.points.first(), t.points.last()) else {
            continue;
        };
        let change = if t.points.len() < 2 {
            "n/a".to_string()
        } else {
            format!("{:+.1}%", t.rel_change() * 100.0)
        };
        let _ = writeln!(
            out,
            "| `{}` | {:.0} | {:.0} | {} | {:.0} | {} |",
            t.name, first.min_ns, last.min_ns, change, last.p50_ns, last.samples
        );
    }
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opad_telemetry::BenchProvenance;

    fn kernel(name: &str, min_ns: f64, samples: u32) -> KernelStats {
        KernelStats {
            name: name.to_string(),
            iters: samples,
            samples,
            mean_ns: min_ns * 1.2,
            min_ns,
            p50_ns: min_ns * 1.1,
            p90_ns: min_ns * 1.3,
            p99_ns: min_ns * 1.5,
            max_ns: min_ns * 2.0,
        }
    }

    fn snapshot(seq: u32, kernels: Vec<KernelStats>) -> BenchReport {
        BenchReport {
            schema_version: 2,
            seq,
            run_id: format!("run-{seq}"),
            warmup_iters: 3,
            iters: Some(30),
            provenance: Some(BenchProvenance {
                git_commit: format!("c{seq}"),
                cores: 4,
                opad_threads: None,
            }),
            kernels,
        }
    }

    #[test]
    fn a_large_slow_regression_trips_the_gate() {
        let base = snapshot(1, vec![kernel("tensor/matmul_128", 1_000_000.0, 30)]);
        let cand = snapshot(2, vec![kernel("tensor/matmul_128", 1_400_000.0, 30)]);
        let report = gate(&base, &cand, &GateConfig::default());
        assert!(report.any_regression());
        assert_eq!(report.rows[0].verdict, GateVerdict::Regressed);
        assert!((report.rows[0].rel_change - 0.4).abs() < 1e-9);
        assert!(report.to_string().contains("REGRESSED"), "{report}");
    }

    #[test]
    fn an_improvement_is_reported_but_never_fails() {
        let base = snapshot(1, vec![kernel("tensor/matmul_128", 1_000_000.0, 30)]);
        let cand = snapshot(2, vec![kernel("tensor/matmul_128", 500_000.0, 30)]);
        let report = gate(&base, &cand, &GateConfig::default());
        assert!(!report.any_regression());
        assert_eq!(report.rows[0].verdict, GateVerdict::Improved);
    }

    #[test]
    fn the_absolute_floor_keeps_fast_kernels_from_flapping() {
        // +50% relative, but only 150 ns absolute — timer jitter, not a
        // regression under the 10 µs default floor.
        let base = snapshot(1, vec![kernel("par/stream_seed_4k", 300.0, 30)]);
        let cand = snapshot(2, vec![kernel("par/stream_seed_4k", 450.0, 30)]);
        let report = gate(&base, &cand, &GateConfig::default());
        assert!(!report.any_regression());
        assert_eq!(report.rows[0].verdict, GateVerdict::Ok);
        // Dropping the floor to zero exposes the relative rule.
        let strict = GateConfig {
            abs_floor_ns: 0.0,
            ..GateConfig::default()
        };
        assert!(gate(&base, &cand, &strict).any_regression());
    }

    #[test]
    fn few_samples_loosen_the_relative_threshold() {
        let cfg = GateConfig::default();
        // At the reference sample size the threshold is unscaled...
        assert!((cfg.effective_rel(30, 30) - 0.25).abs() < 1e-12);
        // ...more samples never tighten below the configured bar...
        assert!((cfg.effective_rel(300, 300) - 0.25).abs() < 1e-12);
        // ...and 5-vs-30 samples widen it by sqrt(30/5).
        let loose = cfg.effective_rel(5, 30);
        assert!((loose - 0.25 * (30.0f64 / 5.0).sqrt()).abs() < 1e-12);
        // A +40% slowdown measured with 5 samples passes; with 30 it fails.
        let base = snapshot(1, vec![kernel("nn/conv2d_8", 1_000_000.0, 5)]);
        let cand = snapshot(2, vec![kernel("nn/conv2d_8", 1_400_000.0, 5)]);
        assert!(!gate(&base, &cand, &cfg).any_regression());
        let base = snapshot(1, vec![kernel("nn/conv2d_8", 1_000_000.0, 30)]);
        let cand = snapshot(2, vec![kernel("nn/conv2d_8", 1_400_000.0, 30)]);
        assert!(gate(&base, &cand, &cfg).any_regression());
    }

    #[test]
    fn missing_and_new_kernels_are_reported_but_do_not_fail() {
        let base = snapshot(
            1,
            vec![
                kernel("tensor/matmul_128", 1_000_000.0, 30),
                kernel("tensor/gone", 2_000_000.0, 30),
            ],
        );
        let cand = snapshot(
            2,
            vec![
                kernel("tensor/matmul_128", 1_000_000.0, 30),
                kernel("tensor/fresh", 3_000_000.0, 30),
            ],
        );
        let report = gate(&base, &cand, &GateConfig::default());
        assert!(!report.any_regression());
        let verdict_of = |name: &str| {
            report
                .rows
                .iter()
                .find(|r| r.name == name)
                .map(|r| r.verdict)
        };
        assert_eq!(verdict_of("tensor/gone"), Some(GateVerdict::Missing));
        assert_eq!(verdict_of("tensor/fresh"), Some(GateVerdict::New));
        let text = report.to_string();
        assert!(text.contains("missing"), "{text}");
        assert!(text.contains("new"), "{text}");
        assert!(text.contains("overall: clean"), "{text}");
    }

    #[test]
    fn history_pivots_the_series_per_kernel() {
        let series = BenchSeries {
            snapshots: vec![
                snapshot(
                    1,
                    vec![kernel("a/x", 100_000.0, 30), kernel("a/y", 50_000.0, 30)],
                ),
                snapshot(2, vec![kernel("a/x", 90_000.0, 30)]),
                snapshot(
                    3,
                    vec![kernel("a/x", 80_000.0, 30), kernel("a/y", 55_000.0, 30)],
                ),
            ],
            skipped: Vec::new(),
        };
        let trends = history(&series);
        assert_eq!(trends.len(), 2);
        let x = &trends[0];
        assert_eq!(x.name, "a/x");
        assert_eq!(
            x.points.iter().map(|p| p.seq).collect::<Vec<_>>(),
            [1, 2, 3]
        );
        assert!((x.rel_change() - (-0.2)).abs() < 1e-12);
        let y = &trends[1];
        assert_eq!(y.points.len(), 2, "gap snapshots contribute no point");
    }

    #[test]
    fn reports_render_json_and_markdown() {
        let series = BenchSeries {
            snapshots: vec![
                snapshot(1, vec![kernel("a/x", 100_000.0, 30)]),
                snapshot(4, vec![kernel("a/x", 150_000.0, 30)]),
            ],
            skipped: Vec::new(),
        };
        let json = report_json(&series);
        let doc = opad_telemetry::parse_json(&json).expect("report_json emits valid JSON");
        assert_eq!(doc.get("baseline_seq").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(doc.get("latest_seq").and_then(|v| v.as_u64()), Some(4));
        let kernels = doc
            .get("kernels")
            .and_then(|v| v.as_arr())
            .expect("kernels array");
        assert_eq!(kernels.len(), 1);
        assert_eq!(kernels[0].get("name").and_then(|v| v.as_str()), Some("a/x"));
        let md = report_md(&series);
        assert!(md.contains("| `a/x` |"), "{md}");
        assert!(md.contains("+50.0%"), "{md}");
    }

    #[test]
    fn load_series_sorts_and_surfaces_unreadable_snapshots() {
        let dir = std::env::temp_dir().join("opad_obs_perf_series_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir is creatable");
        std::fs::write(
            dir.join("BENCH_2.json"),
            "{\"schema_version\": 1, \"seq\": 2, \"run_id\": \"b\", \"kernels\": []}",
        )
        .expect("fixture writes");
        std::fs::write(
            dir.join("BENCH_0001.json"),
            "{\"schema_version\": 2, \"seq\": 1, \"run_id\": \"a\", \"kernels\": []}",
        )
        .expect("fixture writes");
        std::fs::write(dir.join("BENCH_0003.json"), "not json").expect("fixture writes");
        let series = load_series(&dir);
        assert_eq!(
            series.snapshots.iter().map(|s| s.seq).collect::<Vec<_>>(),
            [1, 2]
        );
        assert_eq!(series.baseline().map(|s| s.seq), Some(1));
        assert_eq!(series.latest().map(|s| s.seq), Some(2));
        assert_eq!(series.skipped.len(), 1);
        assert_eq!(series.skipped[0].0, "BENCH_0003.json");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
