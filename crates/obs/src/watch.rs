//! `obsctl watch` — terminal sparklines over the history plane — and
//! `obsctl series export` — ring contents re-serialised as a replayable
//! sample stream.
//!
//! Both commands read the same two sources: a recorded sample-stream
//! file (the [`opad_alert::replay`] JSONL format, loaded into a
//! [`TsdbStore`]) or a live `opad-serve` instance's
//! `/timeseries?all=1` endpoint (`--addr HOST:PORT`). Rendering is a
//! pure function of the store contents — timestamps come from the
//! recorded frame clock, never the wall clock — so `watch --once` over
//! a fixture is byte-stable and golden-testable.

use opad_telemetry::{parse_json, JsonValue};
use opad_tsdb::{parse_duration_ms, Sample, SeriesKind, TsdbStore};
use std::io::{Read, Write as IoWrite};
use std::net::TcpStream;
use std::time::Duration;

const WATCH_USAGE: &str = "\
usage:
  obsctl watch <stream.jsonl> [--series a,b] [--window DUR] [--once]
  obsctl watch --addr HOST:PORT [--series a,b] [--window DUR] [--once] [--interval MS]
  obsctl series export <stream.jsonl|--addr HOST:PORT> [--out FILE]";

/// Sparkline glyphs, lowest to highest.
const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// At most this many points render per line (the newest ones).
const SPARK_WIDTH: usize = 32;

/// How long a live fetch waits for the server.
const HTTP_TIMEOUT: Duration = Duration::from_secs(5);

/// Where the samples come from.
enum Source {
    File(String),
    Addr(String),
}

struct WatchArgs {
    source: Source,
    series: Option<Vec<String>>,
    window_ms: Option<f64>,
    once: bool,
    interval: Duration,
}

fn parse_watch_args(args: &[String], out: &mut dyn IoWrite) -> Result<WatchArgs, i32> {
    let mut path: Option<String> = None;
    let mut addr: Option<String> = None;
    let mut series: Option<Vec<String>> = None;
    let mut window_ms: Option<f64> = None;
    let mut once = false;
    let mut interval = Duration::from_millis(1000);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = Some(v.clone()),
                None => {
                    let _ = writeln!(out, "error: --addr needs HOST:PORT");
                    return Err(2);
                }
            },
            "--series" => match it.next() {
                Some(v) => {
                    series = Some(
                        v.split(',')
                            .filter(|s| !s.is_empty())
                            .map(ToString::to_string)
                            .collect(),
                    )
                }
                None => {
                    let _ = writeln!(out, "error: --series needs a,b,...");
                    return Err(2);
                }
            },
            "--window" => match it.next().map(|v| parse_duration_ms(v)) {
                Some(Ok(ms)) => window_ms = Some(ms),
                Some(Err(e)) => {
                    let _ = writeln!(out, "error: bad --window: {e}");
                    return Err(2);
                }
                None => {
                    let _ = writeln!(out, "error: --window needs a duration (10s, 500ms, 2m)");
                    return Err(2);
                }
            },
            "--once" => once = true,
            "--interval" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) if ms > 0 => interval = Duration::from_millis(ms),
                _ => {
                    let _ = writeln!(out, "error: --interval needs positive milliseconds");
                    return Err(2);
                }
            },
            other if !other.starts_with("--") => path = Some(other.to_string()),
            other => {
                let _ = writeln!(out, "error: unknown watch flag {other:?}\n{WATCH_USAGE}");
                return Err(2);
            }
        }
    }
    let source = match (path, addr) {
        (Some(p), None) => Source::File(p),
        (None, Some(a)) => Source::Addr(a),
        _ => {
            let _ = writeln!(out, "{WATCH_USAGE}");
            return Err(2);
        }
    };
    Ok(WatchArgs {
        source,
        series,
        window_ms,
        once,
        interval,
    })
}

/// `obsctl watch ...`: render sparklines for every (selected) series,
/// once for a recorded stream or `--once`, repeatedly for a live server.
pub fn cmd_watch(args: &[String], out: &mut dyn IoWrite) -> i32 {
    let watch = match parse_watch_args(args, out) {
        Ok(w) => w,
        Err(code) => return code,
    };
    match &watch.source {
        // A recorded stream is a fixed artefact: there is nothing to
        // poll, so one render regardless of --once.
        Source::File(path) => {
            let store = match load_file(path, out) {
                Ok(s) => s,
                Err(code) => return code,
            };
            let _ = write!(
                out,
                "{}",
                render_watch(&store, watch.series.as_deref(), watch.window_ms)
            );
            0
        }
        Source::Addr(addr) => loop {
            let store = match fetch_store(addr) {
                Ok(s) => s,
                Err(e) => {
                    let _ = writeln!(out, "error: {e}");
                    return 2;
                }
            };
            let _ = write!(
                out,
                "{}",
                render_watch(&store, watch.series.as_deref(), watch.window_ms)
            );
            if watch.once {
                return 0;
            }
            let _ = writeln!(out);
            std::thread::sleep(watch.interval);
        },
    }
}

/// `obsctl series export ...`: ring contents as sample-stream JSONL (the
/// same format `alerts replay` and `watch` consume), to stdout or
/// `--out FILE`.
pub fn cmd_series(args: &[String], out: &mut dyn IoWrite) -> i32 {
    if args.first().map(String::as_str) != Some("export") {
        let _ = writeln!(out, "{WATCH_USAGE}");
        return 2;
    }
    let mut path: Option<String> = None;
    let mut addr: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = Some(v.clone()),
                None => {
                    let _ = writeln!(out, "error: --addr needs HOST:PORT");
                    return 2;
                }
            },
            "--out" => match it.next() {
                Some(v) => out_path = Some(v.clone()),
                None => {
                    let _ = writeln!(out, "error: --out needs a file path");
                    return 2;
                }
            },
            other if !other.starts_with("--") => path = Some(other.to_string()),
            other => {
                let _ = writeln!(out, "error: unknown series flag {other:?}\n{WATCH_USAGE}");
                return 2;
            }
        }
    }
    let store = match (path, addr) {
        (Some(p), None) => match load_file(&p, out) {
            Ok(s) => s,
            Err(code) => return code,
        },
        (None, Some(a)) => match fetch_store(&a) {
            Ok(s) => s,
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                return 2;
            }
        },
        _ => {
            let _ = writeln!(out, "{WATCH_USAGE}");
            return 2;
        }
    };
    let text = store.export_jsonl();
    match out_path {
        Some(p) => match std::fs::write(&p, &text) {
            Ok(()) => {
                let _ = writeln!(out, "wrote {} line(s) to {p}", text.lines().count());
                0
            }
            Err(e) => {
                let _ = writeln!(out, "error: {p}: {e}");
                2
            }
        },
        None => {
            let _ = write!(out, "{text}");
            0
        }
    }
}

/// Loads a recorded sample stream into a fresh store, reporting skipped
/// lines (same leniency as `alerts replay`).
fn load_file(path: &str, out: &mut dyn IoWrite) -> Result<TsdbStore, i32> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            let _ = writeln!(out, "error: {path}: {e}");
            return Err(2);
        }
    };
    let store = TsdbStore::new();
    for (line, message) in store.load_stream(&text) {
        let _ = writeln!(out, "{path}:{line}: skipped: {message}");
    }
    Ok(store)
}

/// One GET against a live server; returns the body on HTTP 200.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    stream
        .set_read_timeout(Some(HTTP_TIMEOUT))
        .and_then(|()| stream.set_write_timeout(Some(HTTP_TIMEOUT)))
        .map_err(|e| format!("{addr}: {e}"))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("{addr}: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("{addr}: {e}"))?;
    let status = response.lines().next().unwrap_or_default();
    if !status.contains(" 200 ") {
        return Err(format!("{addr}{path}: {status}"));
    }
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .ok_or_else(|| format!("{addr}{path}: malformed response"))
}

/// Fetches `/timeseries?all=1` and rebuilds a local store from it.
fn fetch_store(addr: &str) -> Result<TsdbStore, String> {
    let body = http_get(addr, "/timeseries?all=1")?;
    let doc = parse_json(body.trim()).map_err(|e| format!("{addr}/timeseries: {e}"))?;
    let store = TsdbStore::new();
    let series = doc
        .get("series")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| format!("{addr}/timeseries: no series array"))?;
    for s in series {
        let name = s
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("series without a name")?;
        let kind = match s.get("kind").and_then(JsonValue::as_str) {
            Some("counter") => SeriesKind::Counter,
            _ => SeriesKind::Gauge,
        };
        let samples = s
            .get("samples")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| format!("series {name} without samples (server too old?)"))?;
        for pair in samples {
            let pair = pair.as_arr().ok_or("sample is not a [t, v] pair")?;
            let (Some(t_ms), Some(value)) = (
                pair.first().and_then(JsonValue::as_f64),
                pair.get(1).and_then(JsonValue::as_f64),
            ) else {
                return Err("sample pair is not numeric".to_string());
            };
            store.push(name, kind, Sample { t_ms, value });
        }
    }
    Ok(store)
}

/// Renders one watch frame: a header with the store's newest frame-clock
/// timestamp, then one sparkline row per series (name-sorted). Counters
/// plot per-step increments (resets clamp to zero); gauges plot raw
/// values.
pub fn render_watch(
    store: &TsdbStore,
    filter: Option<&[String]>,
    window_ms: Option<f64>,
) -> String {
    let mut out = String::new();
    let t_last = store.last_sample_ms();
    let infos: Vec<_> = store
        .series_index()
        .into_iter()
        .filter(|i| filter.is_none_or(|names| names.iter().any(|n| n == &i.name)))
        .collect();
    out.push_str(&format!(
        "watch @ t={}  {} series\n",
        t_last.map_or_else(|| "-".to_string(), |t| format!("{t}ms")),
        infos.len(),
    ));
    for info in infos {
        let samples = match (window_ms, t_last) {
            (Some(w), Some(t1)) => store
                .samples_between(&info.name, t1 - w, t1)
                .unwrap_or_default(),
            _ => store.samples(&info.name).unwrap_or_default(),
        };
        let (values, summary) = match info.kind {
            SeriesKind::Counter => {
                let deltas: Vec<f64> = samples
                    .windows(2)
                    .map(|w| (w[1].value - w[0].value).max(0.0))
                    .collect();
                let total: f64 = deltas.iter().sum();
                let last = samples.last().map(|s| s.value).unwrap_or(0.0);
                (deltas, format!("total={last} Δshown={total}"))
            }
            SeriesKind::Gauge => {
                let values: Vec<f64> = samples.iter().map(|s| s.value).collect();
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for v in &values {
                    lo = lo.min(*v);
                    hi = hi.max(*v);
                }
                let last = values.last().copied().unwrap_or(0.0);
                let summary = if values.is_empty() {
                    "no samples".to_string()
                } else {
                    format!("last={last} min={lo} max={hi}")
                };
                (values, summary)
            }
        };
        out.push_str(&format!(
            "  {:<32} {:<7} {:<width$} {}\n",
            info.name,
            info.kind.as_str(),
            sparkline(&values),
            summary,
            width = SPARK_WIDTH,
        ));
    }
    out
}

/// Maps the newest `SPARK_WIDTH` values onto the eight sparkline
/// glyphs, min-max normalised; a flat (or single-point) series renders
/// at mid-height.
fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return "-".to_string();
    }
    let tail = &values[values.len().saturating_sub(SPARK_WIDTH)..];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for v in tail {
        lo = lo.min(*v);
        hi = hi.max(*v);
    }
    let span = hi - lo;
    tail.iter()
        .map(|v| {
            if span <= 0.0 {
                SPARK[3]
            } else {
                let level = ((v - lo) / span * 7.0).round() as usize;
                SPARK[level.min(7)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> TsdbStore {
        let store = TsdbStore::new();
        for i in 0..6u32 {
            let t = i as f64 * 250.0;
            store.push(
                "c",
                SeriesKind::Counter,
                Sample {
                    t_ms: t,
                    value: (i * i) as f64,
                },
            );
            store.push(
                "g",
                SeriesKind::Gauge,
                Sample {
                    t_ms: t,
                    value: (i % 3) as f64,
                },
            );
        }
        store
    }

    #[test]
    fn rendering_is_a_pure_function_of_the_store() {
        let a = render_watch(&seeded(), None, None);
        let b = render_watch(&seeded(), None, None);
        assert_eq!(a, b);
        assert!(a.starts_with("watch @ t=1250ms  2 series\n"), "{a}");
        assert!(a.contains("total=25"), "{a}");
        assert!(a.contains("last=2 min=0 max=2"), "{a}");
    }

    #[test]
    fn filters_and_windows_cut_the_frame() {
        let store = seeded();
        let only_c = render_watch(&store, Some(&["c".to_string()]), None);
        assert!(only_c.contains("1 series"), "{only_c}");
        assert!(!only_c.contains(" g "), "{only_c}");
        let windowed = render_watch(&store, None, Some(500.0));
        // Window [750, 1250] keeps 3 samples → 2 counter deltas.
        assert!(windowed.contains("Δshown=16"), "{windowed}");
    }

    #[test]
    fn sparklines_normalise_and_handle_flat_series() {
        assert_eq!(sparkline(&[]), "-");
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▄▄▄");
        let line = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(line, "▁▂▃▄▅▆▇█");
    }

    #[test]
    fn counter_resets_clamp_to_zero_increments() {
        let store = TsdbStore::new();
        for (t, v) in [(0.0, 10.0), (250.0, 20.0), (500.0, 3.0), (750.0, 6.0)] {
            store.push("c", SeriesKind::Counter, Sample { t_ms: t, value: v });
        }
        let frame = render_watch(&store, None, None);
        // 10 + 0 (reset) + 3 shown increments.
        assert!(frame.contains("Δshown=13"), "{frame}");
    }
}
