//! `obsctl alerts` — offline faces of the alerting plane.
//!
//! * `alerts check <rules>` parses a rule file and validates every
//!   referenced metric against the workspace vocabulary
//!   ([`opad_telemetry::vocab`]), so a typo'd rule fails CI instead of
//!   silently never firing.
//! * `alerts replay <rules> <recording>` runs the rules over a recorded
//!   sample stream (`*.jsonl`, the [`opad_alert::replay`] format) or a
//!   finished run envelope (`*.json`, evaluated as one final frame) and
//!   prints the exact transition transcript the live engine would have
//!   produced. `--expect name=state,...` turns the final states into a
//!   gate: non-zero exit on mismatch.

use crate::envelope::{read_envelope, TelemetrySummary};
use opad_alert::{
    check_vocabulary, eval_once, parse_rules, replay, AlertState, HistStats, MetricsFrame,
    ReplayOutcome, Rule,
};
use std::io::Write;
use std::path::Path;

const ALERTS_USAGE: &str = "\
usage:
  obsctl alerts check <rules-file>
  obsctl alerts replay <rules-file> <stream.jsonl|envelope.json> [--expect name=state,...]";

/// `obsctl alerts <check|replay> ...`. Exit codes follow the CLI
/// convention: 0 clean, 1 gate failure (bad rules, failed expectation),
/// 2 usage or I/O error.
pub fn cmd_alerts(args: &[String], out: &mut dyn Write) -> i32 {
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..], out),
        Some("replay") => cmd_replay(&args[1..], out),
        _ => {
            let _ = writeln!(out, "{ALERTS_USAGE}");
            2
        }
    }
}

fn load_rules(path: &str, out: &mut dyn Write) -> Result<Vec<Rule>, i32> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            let _ = writeln!(out, "error: {path}: {e}");
            return Err(2);
        }
    };
    let (rules, errors) = parse_rules(&text);
    for e in &errors {
        let _ = writeln!(out, "{path}:{}: {}", e.line, e.message);
    }
    if !errors.is_empty() {
        let _ = writeln!(out, "{} parse error(s)", errors.len());
        return Err(1);
    }
    if rules.is_empty() {
        let _ = writeln!(out, "error: {path} defines no rules");
        return Err(1);
    }
    Ok(rules)
}

fn cmd_check(args: &[String], out: &mut dyn Write) -> i32 {
    let Some(path) = args.first() else {
        let _ = writeln!(out, "{ALERTS_USAGE}");
        return 2;
    };
    let rules = match load_rules(path, out) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let problems = check_vocabulary(&rules);
    for p in &problems {
        let _ = writeln!(out, "{path}: {p}");
    }
    if !problems.is_empty() {
        let _ = writeln!(out, "{} vocabulary problem(s)", problems.len());
        return 1;
    }
    let _ = writeln!(
        out,
        "{path}: {} rule(s) ok, all metric names in the workspace vocabulary",
        rules.len()
    );
    for rule in &rules {
        let _ = writeln!(out, "  {rule}");
    }
    0
}

/// `name=state` pairs from every `--expect` argument (comma-separable).
fn parse_expectations(
    args: &[String],
    out: &mut dyn Write,
) -> Result<Vec<(String, AlertState)>, i32> {
    let mut expect = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a != "--expect" {
            continue;
        }
        let Some(spec) = it.next() else {
            let _ = writeln!(out, "error: --expect needs name=state,...");
            return Err(2);
        };
        for pair in spec.split(',').filter(|p| !p.is_empty()) {
            let Some((name, state)) = pair.split_once('=') else {
                let _ = writeln!(
                    out,
                    "error: malformed expectation {pair:?} (want name=state)"
                );
                return Err(2);
            };
            let Some(state) = AlertState::parse(state) else {
                let _ = writeln!(
                    out,
                    "error: unknown state {state:?} (inactive|pending|firing|resolved)"
                );
                return Err(2);
            };
            expect.push((name.to_string(), state));
        }
    }
    Ok(expect)
}

fn cmd_replay(args: &[String], out: &mut dyn Write) -> i32 {
    let positional: Vec<&String> = {
        // Skip flag values: everything after --expect is its spec.
        let mut pos = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a == "--expect" {
                let _ = it.next();
            } else if !a.starts_with("--") {
                pos.push(a);
            }
        }
        pos
    };
    let (Some(rules_path), Some(recording)) = (positional.first(), positional.get(1)) else {
        let _ = writeln!(out, "{ALERTS_USAGE}");
        return 2;
    };
    let rules = match load_rules(rules_path, out) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let expect = match parse_expectations(args, out) {
        Ok(e) => e,
        Err(code) => return code,
    };
    for (name, _) in &expect {
        if !rules.iter().any(|r| &r.name == name) {
            let _ = writeln!(out, "error: --expect names unknown rule {name:?}");
            return 2;
        }
    }
    let outcome = match run_recording(rules, recording, out) {
        Ok(o) => o,
        Err(code) => return code,
    };
    for (line, message) in &outcome.errors {
        let _ = writeln!(out, "{recording}:{line}: skipped: {message}");
    }
    let _ = writeln!(
        out,
        "replayed {} evaluation point(s), {} transition(s):",
        outcome.ticks,
        outcome.transitions.len()
    );
    for t in &outcome.transitions {
        let _ = writeln!(out, "  {t}");
    }
    let _ = writeln!(out, "final states:");
    for s in &outcome.statuses {
        let _ = writeln!(out, "  {:<24} {}", s.name, s.state.as_str());
    }
    let mut failures = 0;
    for (name, want) in &expect {
        let got = outcome
            .statuses
            .iter()
            .find(|s| &s.name == name)
            .map(|s| s.state)
            .expect("expectation names were validated against the rules");
        if got != *want {
            let _ = writeln!(
                out,
                "FAIL: {name} ended {} (expected {})",
                got.as_str(),
                want.as_str()
            );
            failures += 1;
        }
    }
    if failures > 0 {
        let _ = writeln!(out, "{failures} expectation(s) failed");
        return 1;
    }
    if !expect.is_empty() {
        let _ = writeln!(out, "all {} expectation(s) hold", expect.len());
    }
    0
}

/// Dispatches on recording type: a run envelope replays as one final
/// frame; anything else is treated as a sample stream.
fn run_recording(
    rules: Vec<Rule>,
    recording: &str,
    out: &mut dyn Write,
) -> Result<ReplayOutcome, i32> {
    let path = Path::new(recording);
    if path.extension().is_some_and(|e| e == "json") {
        let envelope = match read_envelope(path) {
            Ok(e) => e,
            Err(e) => {
                let _ = writeln!(out, "error: {recording}: {e}");
                return Err(2);
            }
        };
        let Some(telemetry) = envelope.telemetry else {
            let _ = writeln!(out, "error: {recording} has no telemetry block to evaluate");
            return Err(2);
        };
        let _ = writeln!(
            out,
            "evaluating run {} as one final frame (wall {:.0} ms)",
            envelope.run_id, telemetry.wall_ms
        );
        Ok(eval_once(rules, &envelope_frame(&telemetry)))
    } else {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(replay(rules, &text)),
            Err(e) => {
                let _ = writeln!(out, "error: {recording}: {e}");
                Err(2)
            }
        }
    }
}

/// A finished run's telemetry summary as one evaluation frame: counters
/// and gauges verbatim, histogram summaries reduced to the same
/// [`HistStats`] shape live snapshots produce.
pub fn envelope_frame(t: &TelemetrySummary) -> MetricsFrame {
    let mut frame = MetricsFrame::new(t.wall_ms);
    for (name, total) in &t.counters {
        frame.set_counter(name, *total);
    }
    for (name, value) in &t.gauges {
        frame.set_gauge(name, *value);
    }
    for h in &t.histograms {
        if h.count > 0 {
            frame.set_hist(
                &h.name,
                HistStats {
                    count: h.count,
                    p50: h.p50,
                    p90: h.p90,
                    p99: h.p99,
                },
            );
        }
    }
    frame
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::HistStat;

    #[test]
    fn envelope_frames_carry_the_summary_shape() {
        let t = TelemetrySummary {
            wall_ms: 900.0,
            counters: vec![("pipeline.seeds_attacked".to_string(), 30)],
            gauges: vec![("reliability.pfd_mean".to_string(), 0.2)],
            histograms: vec![HistStat {
                name: "attack.fuzz.naturalness".to_string(),
                count: 10,
                min: -40.0,
                max: -10.0,
                mean: -25.0,
                p50: -26.0,
                p90: -14.0,
                p99: -11.0,
            }],
            ..TelemetrySummary::default()
        };
        let frame = envelope_frame(&t);
        assert_eq!(frame.t_ms, 900.0);
        assert_eq!(frame.counter("pipeline.seeds_attacked"), Some(30));
        assert_eq!(frame.gauge("reliability.pfd_mean"), Some(0.2));
        assert_eq!(
            frame.hist("attack.fuzz.naturalness").map(|h| h.p50),
            Some(-26.0)
        );
    }
}
