//! `obsctl selfcheck` — validate every artefact against its declared
//! schema version.
//!
//! Covers the five artefact families: `results/*.json` run envelopes,
//! `results/*_trace.jsonl` span streams, `results/*_alerts.jsonl` alert
//! transition logs, `CKPT_*.json` campaign checkpoints, and
//! `BENCH_*.json` benchmark snapshots. A truncated trace tail is
//! reported as a warning (a crashed run is a fact, not a malformed
//! file); everything else unparseable is an error — a checkpoint in
//! particular must fail loudly here for the same reason resume rejects
//! it: continuing from half a posterior is worse than not resuming.

use crate::bench::read_bench_report;
use crate::envelope::read_envelope;
use opad_alert::transition_from_json;
use opad_telemetry::{
    ckpt_seq, parse_json, parse_trace, JsonValue, CHECKPOINT_KIND_SHARDED,
    CHECKPOINT_SCHEMA_VERSION,
};
use std::fmt::Write as _;
use std::path::Path;

/// Result of checking one directory tree.
#[derive(Debug, Clone, Default)]
pub struct CheckOutcome {
    /// Files that validated cleanly.
    pub ok: Vec<String>,
    /// `(file, message)` warnings (still usable artefacts).
    pub warnings: Vec<(String, String)>,
    /// `(file, message)` validation failures.
    pub errors: Vec<(String, String)>,
}

impl CheckOutcome {
    /// True when no file failed validation.
    pub fn passed(&self) -> bool {
        self.errors.is_empty()
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for f in &self.ok {
            let _ = writeln!(s, "ok      {f}");
        }
        for (f, m) in &self.warnings {
            let _ = writeln!(s, "warn    {f}: {m}");
        }
        for (f, m) in &self.errors {
            let _ = writeln!(s, "ERROR   {f}: {m}");
        }
        let _ = write!(
            s,
            "selfcheck: {} ok, {} warnings, {} errors",
            self.ok.len(),
            self.warnings.len(),
            self.errors.len()
        );
        s
    }
}

/// Validates every recognised artefact under `results_dir` (envelopes and
/// traces) and `bench_dir` (`BENCH_*.json`).
pub fn selfcheck_dir(results_dir: &Path, bench_dir: &Path) -> CheckOutcome {
    let mut out = CheckOutcome::default();
    for path in sorted_files(results_dir) {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if name.ends_with("_trace.jsonl") {
            let Ok(text) = std::fs::read_to_string(&path) else {
                out.errors.push((name, "unreadable".into()));
                continue;
            };
            let trace = parse_trace(&text);
            if let Some((line, err)) = trace.errors.first() {
                out.errors.push((name, format!("line {line}: {err}")));
            } else if trace.truncated {
                out.warnings
                    .push((name, "truncated final line (crashed run?)".into()));
            } else {
                out.ok.push(name);
            }
        } else if name.ends_with("_alerts.jsonl") {
            match std::fs::read_to_string(&path) {
                Err(_) => out.errors.push((name, "unreadable".into())),
                Ok(text) => match first_bad_alert_line(&text) {
                    Some((line, m)) => out.errors.push((name, format!("line {line}: {m}"))),
                    None => out.ok.push(name),
                },
            }
        } else if ckpt_seq(&name).is_some() {
            // Campaign checkpoints: self-describing envelopes, but of
            // their own family — the generic run-envelope reader below
            // would misjudge them on `experiment`/file-name grounds.
            match std::fs::read_to_string(&path) {
                Err(_) => out.errors.push((name, "unreadable".into())),
                Ok(text) => match first_checkpoint_fault(&text) {
                    Some(m) => out.errors.push((name, m)),
                    None => out.ok.push(name),
                },
            }
        } else if name.ends_with(".json") && !name.starts_with("BENCH_") {
            // Bench snapshots are validated by the bench pass below, even
            // when `bench_dir` happens to be the same directory.
            match read_envelope(&path) {
                Ok(env) => {
                    let stem = name.trim_end_matches(".json");
                    if env.experiment == stem {
                        out.ok.push(name);
                    } else {
                        out.warnings.push((
                            name,
                            format!("experiment {:?} does not match file name", env.experiment),
                        ));
                    }
                }
                Err(e) => out.errors.push((name, e.to_string())),
            }
        }
    }
    for path in sorted_files(bench_dir) {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        match read_bench_report(&path) {
            Ok(_) => out.ok.push(name),
            Err(e) => out.errors.push((name, e)),
        }
    }
    out
}

/// First invalid line of an alert transition log, if any. Lines of other
/// kinds sharing the file are tolerated (mirroring the reader), but they
/// must still be JSON, and anything claiming `kind:"alert"` must decode.
fn first_bad_alert_line(text: &str) -> Option<(usize, String)> {
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = parse_json(line) else {
            return Some((i + 1, "unparseable line".to_string()));
        };
        if v.get("kind").and_then(JsonValue::as_str) == Some("alert")
            && transition_from_json(line).is_none()
        {
            return Some((i + 1, "malformed alert transition".to_string()));
        }
    }
    None
}

/// Why a `CKPT_<seq>.json` body is not a valid campaign checkpoint, if
/// it isn't. Structural validation only — the std-only analytics layer
/// cannot (and should not) deserialize the network — but enough to catch
/// truncation, foreign kinds, future schemas and missing state blocks.
fn first_checkpoint_fault(text: &str) -> Option<String> {
    let v = match parse_json(text) {
        Ok(v) => v,
        Err(e) => return Some(format!("unparseable checkpoint: {e}")),
    };
    let Some(version) = v.get("schema_version").and_then(JsonValue::as_u64) else {
        return Some("missing schema_version".into());
    };
    if version > CHECKPOINT_SCHEMA_VERSION as u64 {
        return Some(format!(
            "checkpoint schema v{version} is newer than supported v{CHECKPOINT_SCHEMA_VERSION}"
        ));
    }
    match v.get("kind").and_then(JsonValue::as_str) {
        None => return Some("missing kind".into()),
        Some(kind) if kind != CHECKPOINT_KIND_SHARDED => {
            return Some(format!("unknown checkpoint kind {kind:?}"));
        }
        Some(_) => {}
    }
    for field in [
        "campaign_seed",
        "rounds_run",
        "config",
        "cell_op",
        "net",
        "reliability",
        "timeline",
        "corpus",
        "reports",
    ] {
        if v.get(field).is_none() {
            return Some(format!("missing state block {field:?}"));
        }
    }
    None
}

fn sorted_files(dir: &Path) -> Vec<std::path::PathBuf> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    files.sort();
    files
}

#[cfg(test)]
mod tests {
    use super::*;
    use opad_telemetry::Event;

    fn fixture_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("opad_obs_selfcheck_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("results")).expect("temp dir is creatable");
        dir
    }

    fn write_envelope(dir: &Path, exp: &str) {
        let doc = format!(
            "{{\"schema_version\": 1, \"experiment\": \"{exp}\", \"run_id\": \"t\", \
             \"config\": null, \"telemetry\": null, \"rows\": []}}"
        );
        std::fs::write(dir.join("results").join(format!("{exp}.json")), doc)
            .expect("fixture writes");
    }

    #[test]
    fn clean_artefacts_pass_and_violations_are_split_by_severity() {
        let dir = fixture_dir("main");
        write_envelope(&dir, "exp_alpha");
        // A clean trace...
        let line = Event::Counter {
            name: "c".into(),
            total: 1,
        }
        .to_json();
        std::fs::write(
            dir.join("results/exp_alpha_trace.jsonl"),
            format!("{line}\n"),
        )
        .expect("fixture writes");
        // ...a truncated trace (warning)...
        std::fs::write(
            dir.join("results/exp_beta_trace.jsonl"),
            format!("{line}\n{}", &line[..line.len() / 2]),
        )
        .expect("fixture writes");
        // ...an envelope from the future (error)...
        std::fs::write(
            dir.join("results/exp_future.json"),
            "{\"schema_version\": 9, \"experiment\": \"exp_future\", \"run_id\": \"t\", \
             \"config\": null}",
        )
        .expect("fixture writes");
        // ...and a bench snapshot.
        std::fs::write(
            dir.join("BENCH_0.json"),
            "{\"schema_version\": 1, \"run_id\": \"t\", \"kernels\": []}",
        )
        .expect("fixture writes");

        let outcome = selfcheck_dir(&dir.join("results"), &dir);
        assert!(!outcome.passed());
        assert_eq!(outcome.ok.len(), 3, "{outcome:?}"); // envelope + clean trace + bench
        assert_eq!(outcome.warnings.len(), 1);
        assert!(outcome.warnings[0].1.contains("truncated"));
        assert_eq!(outcome.errors.len(), 1);
        assert!(outcome.errors[0].1.contains("newer than supported"));
        let report = outcome.render();
        assert!(report.contains("selfcheck: 3 ok, 1 warnings, 1 errors"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn alert_logs_validate_line_by_line() {
        let dir = fixture_dir("alerts");
        let good = "{\"v\":1,\"kind\":\"alert\",\"t_ms\":10.0,\"alert\":\"b\",\
                    \"severity\":\"critical\",\"from\":\"pending\",\"to\":\"firing\"}\n";
        std::fs::write(dir.join("results/run_alerts.jsonl"), good).expect("fixture writes");
        // A transition with an unknown state is an error, not skipped.
        let bad = "{\"v\":1,\"kind\":\"alert\",\"t_ms\":10.0,\"alert\":\"b\",\
                   \"severity\":\"critical\",\"from\":\"pending\",\"to\":\"exploded\"}\n";
        std::fs::write(dir.join("results/broken_alerts.jsonl"), bad).expect("fixture writes");
        let outcome = selfcheck_dir(&dir.join("results"), &dir);
        assert_eq!(outcome.ok, vec!["run_alerts.jsonl"]);
        assert_eq!(outcome.errors.len(), 1);
        assert!(outcome.errors[0].1.contains("line 1"), "{outcome:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_bench_snapshot_next_to_the_envelopes_is_not_parsed_as_one() {
        let dir = fixture_dir("samedir");
        write_envelope(&dir, "exp_delta");
        let results = dir.join("results");
        std::fs::write(
            results.join("BENCH_0.json"),
            "{\"schema_version\": 1, \"run_id\": \"t\", \"kernels\": []}",
        )
        .expect("fixture writes");
        // results dir and bench dir are the same directory here.
        let outcome = selfcheck_dir(&results, &results);
        assert!(outcome.passed(), "{outcome:?}");
        assert_eq!(outcome.ok.len(), 2, "{outcome:?}"); // envelope + bench, once each
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoints_validate_as_their_own_family() {
        let dir = fixture_dir("ckpt");
        let results = dir.join("results");
        let good = format!(
            "{{\"schema_version\": {CHECKPOINT_SCHEMA_VERSION}, \
             \"kind\": \"{CHECKPOINT_KIND_SHARDED}\", \"campaign_seed\": 7, \
             \"rounds_run\": 1, \"config\": {{}}, \"cell_op\": [0.5, 0.5], \
             \"net\": {{}}, \"reliability\": {{}}, \"timeline\": {{}}, \
             \"corpus\": {{}}, \"reports\": []}}"
        );
        // Padded and unpadded names are both recognised.
        std::fs::write(results.join("CKPT_0000.json"), &good).expect("fixture writes");
        std::fs::write(results.join("CKPT_7.json"), &good).expect("fixture writes");
        // Truncation is an error, not a silently skipped file.
        std::fs::write(results.join("CKPT_0001.json"), &good[..good.len() / 2])
            .expect("fixture writes");
        // Future schema and missing state blocks are errors.
        std::fs::write(
            results.join("CKPT_0002.json"),
            good.replace(
                &format!("\"schema_version\": {CHECKPOINT_SCHEMA_VERSION}"),
                "\"schema_version\": 99",
            ),
        )
        .expect("fixture writes");
        std::fs::write(
            results.join("CKPT_0003.json"),
            good.replace("\"reliability\": {}, ", ""),
        )
        .expect("fixture writes");
        let outcome = selfcheck_dir(&results, &dir);
        assert_eq!(outcome.ok.len(), 2, "{outcome:?}");
        assert_eq!(outcome.errors.len(), 3, "{outcome:?}");
        let messages: Vec<&str> = outcome.errors.iter().map(|(_, m)| m.as_str()).collect();
        assert!(messages.iter().any(|m| m.contains("unparseable")));
        assert!(messages.iter().any(|m| m.contains("newer than supported")));
        assert!(messages.iter().any(|m| m.contains("reliability")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exp11_detector_envelope_validates_with_its_grid_sections() {
        // The detector-comparison experiment emits a v1 envelope whose
        // result tables are named sections (`auroc_grid`, `summary`)
        // rather than `rows`; selfcheck must accept it under its own
        // file stem like any other experiment.
        let dir = fixture_dir("exp11");
        let doc = "{\"schema_version\": 1, \
                   \"experiment\": \"exp11_detector_comparison\", \
                   \"run_id\": \"t\", \"config\": {\"eps_linf\": 0.8}, \
                   \"telemetry\": null, \
                   \"auroc_grid\": [{\"detector\": \"lid\", \"attack\": \"pgd\", \
                                     \"adaptive\": false, \"aes\": 42, \"auroc\": 0.91}, \
                                    {\"detector\": \"lid\", \"attack\": \"adaptive_pgd\", \
                                     \"adaptive\": true, \"aes\": 40, \"auroc\": 0.55}], \
                   \"summary\": [{\"naive_mean_auroc\": 0.8, \"adaptive_mean_auroc\": 0.6}]}";
        std::fs::write(dir.join("results/exp11_detector_comparison.json"), doc)
            .expect("fixture writes");
        let outcome = selfcheck_dir(&dir.join("results"), &dir);
        assert!(outcome.passed(), "{outcome:?}");
        assert_eq!(outcome.ok, vec!["exp11_detector_comparison.json"]);
        assert!(outcome.warnings.is_empty(), "{outcome:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_name_mismatch_is_a_warning_not_an_error() {
        let dir = fixture_dir("mismatch");
        let doc = "{\"schema_version\": 1, \"experiment\": \"something_else\", \
                   \"run_id\": \"t\", \"config\": null, \"rows\": []}";
        std::fs::write(dir.join("results/exp_gamma.json"), doc).expect("fixture writes");
        let outcome = selfcheck_dir(&dir.join("results"), &dir);
        assert!(outcome.passed());
        assert_eq!(outcome.warnings.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
