//! Feature-squeezing detection (Xu et al., NDSS 2018).
//!
//! Squeeze the input — reduce bit depth, smooth locally — and compare the
//! model's prediction on the squeezed input with its prediction on the
//! original. Natural inputs barely move; adversarial perturbations, which
//! live in the high-frequency residue the squeezers destroy, move a lot.
//! Score = max over squeezers of the L1 distance between the two softmax
//! vectors (higher = more adversarial).

use crate::{DetectError, Detector};
use opad_data::Dataset;
use opad_nn::{softmax, Network};
use opad_tensor::Tensor;

/// Prediction-shift-under-squeezing detector.
///
/// The fitted state is the per-feature range of clean data (elementwise
/// min/max — the one detector whose merge is a pure lattice join, bit-exact
/// and order-free), which calibrates the bit-depth quantizer.
#[derive(Debug, Clone)]
pub struct FeatureSqueeze {
    net: Network,
    bits: u32,
    window: usize,
    dim: usize,
    lo: Vec<f32>,
    hi: Vec<f32>,
    n: usize,
}

impl FeatureSqueeze {
    /// Creates an unfitted feature-squeezing detector: `bits` of precision
    /// for the quantizer, `window`-wide (odd) median smoothing.
    ///
    /// # Errors
    ///
    /// Fails unless `1 ≤ bits ≤ 16`, `window` is odd, and the network's
    /// input width is known.
    pub fn new(net: Network, bits: u32, window: usize) -> Result<Self, DetectError> {
        if !(1..=16).contains(&bits) {
            return Err(DetectError::InvalidConfig {
                reason: format!("squeeze bit depth must be in 1..=16, got {bits}"),
            });
        }
        if window % 2 == 0 {
            return Err(DetectError::InvalidConfig {
                reason: format!("median window must be odd, got {window}"),
            });
        }
        let dim = net.input_dim().ok_or_else(|| DetectError::InvalidConfig {
            reason: "feature squeezing needs a network with a known input width".into(),
        })?;
        Ok(FeatureSqueeze {
            net,
            bits,
            window,
            dim,
            lo: vec![f32::INFINITY; dim],
            hi: vec![f32::NEG_INFINITY; dim],
            n: 0,
        })
    }

    /// Number of clean rows the range calibration has seen.
    pub fn reference_len(&self) -> usize {
        self.n
    }

    /// Bit-depth squeezer: snap each feature to `2^bits − 1` levels of the
    /// calibrated clean range. Zero-range features pass through.
    fn quantize(&self, x: &[f32]) -> Vec<f32> {
        let levels = ((1u32 << self.bits) - 1) as f32;
        x.iter()
            .enumerate()
            .map(|(j, &v)| {
                let (lo, hi) = (self.lo[j], self.hi[j]);
                let range = hi - lo;
                if range <= 0.0 {
                    v
                } else {
                    let t = ((v - lo) / range).clamp(0.0, 1.0);
                    lo + (t * levels).round() / levels * range
                }
            })
            .collect()
    }

    /// Median smoothing over the feature axis with replicated edges.
    fn median_smooth(&self, x: &[f32]) -> Vec<f32> {
        let half = (self.window / 2) as isize;
        let d = x.len() as isize;
        let mut buf = Vec::with_capacity(self.window);
        (0..d)
            .map(|j| {
                buf.clear();
                for off in -half..=half {
                    buf.push(x[(j + off).clamp(0, d - 1) as usize]);
                }
                buf.sort_unstable_by(f32::total_cmp);
                buf[buf.len() / 2]
            })
            .collect()
    }

    /// Softmax prediction of the wrapped network on one input.
    fn predict(&self, x: &[f32]) -> Result<Vec<f64>, DetectError> {
        let t = Tensor::from_vec(x.to_vec(), &[1, self.dim])?;
        let logits = self.net.forward_infer(&t)?;
        let probs = softmax(&logits)?;
        Ok(probs.as_slice().iter().map(|&p| p as f64).collect())
    }
}

fn l1(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

impl Detector for FeatureSqueeze {
    fn name(&self) -> &'static str {
        "feature_squeeze"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn fit(&mut self, clean: &Dataset) -> Result<(), DetectError> {
        if clean.is_empty() {
            return Err(DetectError::DegenerateInput {
                reason: "cannot calibrate squeezers on an empty dataset".into(),
            });
        }
        if clean.feature_dim() != self.dim {
            return Err(DetectError::DimensionMismatch {
                expected: self.dim,
                actual: clean.feature_dim(),
            });
        }
        let xs = clean.features().as_slice();
        for row in xs.chunks_exact(self.dim) {
            for (j, &v) in row.iter().enumerate() {
                self.lo[j] = self.lo[j].min(v);
                self.hi[j] = self.hi[j].max(v);
            }
        }
        self.n += clean.len();
        opad_telemetry::counter_add("detector.fit_rows", clean.len() as u64);
        Ok(())
    }

    fn merge(&mut self, other: &Self) -> Result<(), DetectError> {
        if self.bits != other.bits || self.window != other.window || self.dim != other.dim {
            return Err(DetectError::MergeMismatch {
                reason: "feature-squeeze shards disagree on bits/window/dim".into(),
            });
        }
        for j in 0..self.dim {
            self.lo[j] = self.lo[j].min(other.lo[j]);
            self.hi[j] = self.hi[j].max(other.hi[j]);
        }
        self.n += other.n;
        opad_telemetry::counter_add("detector.merges", 1);
        Ok(())
    }

    fn score(&self, x: &[f32]) -> Result<f64, DetectError> {
        if x.len() != self.dim {
            return Err(DetectError::DimensionMismatch {
                expected: self.dim,
                actual: x.len(),
            });
        }
        if self.n == 0 {
            return Err(DetectError::NotFitted {
                detector: "feature_squeeze",
            });
        }
        if self.lo.iter().zip(&self.hi).all(|(l, h)| h - l <= 0.0) {
            return Err(DetectError::DegenerateInput {
                reason: "every feature is constant in the calibration data".into(),
            });
        }
        let p0 = self.predict(x)?;
        let p_quant = self.predict(&self.quantize(x))?;
        let p_smooth = self.predict(&self.median_smooth(x))?;
        Ok(l1(&p0, &p_quant).max(l1(&p0, &p_smooth)))
    }
}
