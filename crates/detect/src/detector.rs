//! The [`Detector`] trait: one contract for every adversarial-example
//! detector in the zoo.

use crate::DetectError;
use opad_data::Dataset;
use opad_tensor::Tensor;

/// An adversarial-example detector.
///
/// Detectors follow the fit/merge/score contract of the OP-model
/// sufficient statistics (PR-8): `fit` *accumulates* reference state from
/// clean data (calling it again appends more), `merge` folds another
/// shard's accumulated state into this one, and `score` maps an input to a
/// suspicion score where **higher means more adversarial**.
///
/// # Shard laws
///
/// Implementations must keep `merge` bit-exact against a single-shard fit:
/// splitting a clean dataset into row-order shards, fitting one detector
/// per shard and merging them in shard order must produce scores that are
/// **bit-identical** to fitting one detector on the whole set. The zoo
/// achieves this the same way `Kde::merge` does — raw reference rows are
/// retained in canonical order, merging concatenates them, and any derived
/// statistics are recomputed as a pure function of that order.
/// `crates/detect/tests/detector_laws.rs` enforces this at shard counts
/// {1, 2, 4, 8}.
///
/// # Degeneracy
///
/// Scoring must never return NaN: when the reference data cannot support a
/// score (nothing fitted, too few rows, zero variance), implementations
/// return [`DetectError::NotFitted`] or [`DetectError::DegenerateInput`].
pub trait Detector {
    /// Stable short name (used in telemetry, reports and experiment
    /// tables).
    fn name(&self) -> &'static str;

    /// Input dimensionality the detector expects.
    fn dim(&self) -> usize;

    /// Accumulates reference state from a clean dataset. Calling `fit`
    /// repeatedly appends — it never resets.
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch, empty datasets, or a failing forward
    /// pass.
    fn fit(&mut self, clean: &Dataset) -> Result<(), DetectError>;

    /// Folds `other`'s accumulated reference state into `self` (shard
    /// order matters: merge shards in the same order the rows were
    /// split).
    ///
    /// # Errors
    ///
    /// Fails when the two shards disagree on configuration
    /// ([`DetectError::MergeMismatch`]).
    fn merge(&mut self, other: &Self) -> Result<(), DetectError>
    where
        Self: Sized;

    /// Suspicion score of `x`: higher = more adversarial.
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch, unfitted or degenerate reference
    /// state — never returns NaN.
    fn score(&self, x: &[f32]) -> Result<f64, DetectError>;

    /// Gradient `∇ₓ score(x)` — what a detector-aware (adaptive) attack
    /// descends to stay invisible.
    ///
    /// The default implementation uses central finite differences with
    /// step `1e-3`; detectors with a closed form override it.
    ///
    /// # Errors
    ///
    /// Same as [`Detector::score`].
    fn score_gradient(&self, x: &[f32]) -> Result<Vec<f32>, DetectError> {
        let h = 1e-3f32;
        let mut grad = vec![0.0f32; x.len()];
        let mut probe = x.to_vec();
        for j in 0..x.len() {
            probe[j] = x[j] + h;
            let fp = self.score(&probe)?;
            probe[j] = x[j] - h;
            let fm = self.score(&probe)?;
            probe[j] = x[j];
            grad[j] = ((fp - fm) / (2.0 * h as f64)) as f32;
        }
        Ok(grad)
    }
}

/// Scores every row of a `[n, d]` matrix, fanning out over fixed 64-row
/// chunks (mirrors `opmodel::log_density_batch`).
///
/// Determinism: chunk boundaries depend only on `n`, each row is scored
/// exactly as in the serial loop, and chunk results (including errors) are
/// combined in row order — so the output, and which error surfaces when
/// several rows fail, are identical at every thread count.
///
/// # Errors
///
/// Returns [`DetectError::DimensionMismatch`] when `data` is not a matrix
/// of `detector.dim()`-wide rows, and propagates the first (by row order)
/// [`Detector::score`] failure.
pub fn score_batch<D>(detector: &D, data: &Tensor) -> Result<Vec<f64>, DetectError>
where
    D: Detector + Sync + ?Sized,
{
    let d = detector.dim();
    if data.rank() != 2 || data.dims()[1] != d {
        return Err(DetectError::DimensionMismatch {
            expected: d,
            actual: if data.rank() == 2 {
                data.dims()[1]
            } else {
                data.len()
            },
        });
    }
    let n = data.dims()[0];
    let xs = data.as_slice();
    const CHUNK_ROWS: usize = 64;
    let chunks = opad_par::par_ranges(n, CHUNK_ROWS, |_, rows| {
        let mut part = Vec::with_capacity(rows.len());
        for i in rows {
            part.push(detector.score(&xs[i * d..(i + 1) * d])?);
        }
        Ok::<Vec<f64>, DetectError>(part)
    });
    let mut out = Vec::with_capacity(n);
    for chunk in chunks {
        out.extend(chunk?);
    }
    opad_telemetry::counter_add("detector.scored", n as u64);
    Ok(out)
}
