//! MagNet-style reconstruction-error detection (Meng & Chen, CCS 2017).
//!
//! MagNet trains an autoencoder on clean data and flags inputs whose
//! reconstruction error is large — adversarial examples lie off the clean
//! manifold the autoencoder learned. This implementation reuses the
//! workspace's linear manifold learner (`opmodel::Pca`) as the
//! reconstructor: score = squared residual outside the top-k principal
//! subspace of the clean data (higher = more adversarial).

use crate::{DetectError, Detector};
use opad_data::Dataset;
use opad_opmodel::Pca;
use opad_tensor::Tensor;

/// PCA-reconstruction detector.
///
/// Raw clean rows are retained in canonical fit order; `merge`
/// concatenates them and the PCA is recomputed as a pure function of that
/// order, so sharded fits are bit-identical to a single fit.
#[derive(Debug, Clone)]
pub struct Magnet {
    dim: usize,
    k: usize,
    rows: Vec<f32>,
    n: usize,
    pca: Option<Pca>,
}

impl Magnet {
    /// Creates an unfitted MagNet detector keeping `k` principal
    /// components of `dim`-dimensional inputs.
    ///
    /// # Errors
    ///
    /// Fails unless `1 ≤ k ≤ dim`.
    pub fn new(dim: usize, k: usize) -> Result<Self, DetectError> {
        if dim == 0 || k == 0 || k > dim {
            return Err(DetectError::InvalidConfig {
                reason: format!("MagNet needs 1 ≤ k ≤ dim, got k={k}, dim={dim}"),
            });
        }
        Ok(Magnet {
            dim,
            k,
            rows: Vec::new(),
            n: 0,
            pca: None,
        })
    }

    /// Number of clean reference rows accumulated.
    pub fn reference_len(&self) -> usize {
        self.n
    }

    /// Recomputes the PCA from the canonical row order. With fewer than 2
    /// rows or zero variance the reconstructor stays unfitted (scoring
    /// then reports the degeneracy instead of producing NaN).
    fn derive(&mut self) -> Result<(), DetectError> {
        self.pca = None;
        if self.n < 2 {
            return Ok(());
        }
        let d = self.dim;
        let mut mean = vec![0.0f64; d];
        for row in self.rows.chunks_exact(d) {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v as f64;
            }
        }
        for m in &mut mean {
            *m /= self.n as f64;
        }
        let mut ss = 0.0f64;
        for row in self.rows.chunks_exact(d) {
            for (m, &v) in mean.iter().zip(row) {
                let dev = v as f64 - m;
                ss += dev * dev;
            }
        }
        if ss <= 0.0 {
            return Ok(()); // constant data: no manifold to reconstruct
        }
        let data = Tensor::from_vec(self.rows.clone(), &[self.n, d])?;
        self.pca = Some(Pca::fit(&data, self.k)?);
        Ok(())
    }

    /// The fitted reconstructor, or the precise reason there isn't one.
    fn pca_or_err(&self, x: &[f32]) -> Result<&Pca, DetectError> {
        if x.len() != self.dim {
            return Err(DetectError::DimensionMismatch {
                expected: self.dim,
                actual: x.len(),
            });
        }
        if self.n == 0 {
            return Err(DetectError::NotFitted { detector: "magnet" });
        }
        self.pca
            .as_ref()
            .ok_or_else(|| DetectError::DegenerateInput {
                reason: if self.n < 2 {
                    format!("MagNet needs ≥ 2 reference rows, have {}", self.n)
                } else {
                    "reference data has zero variance".into()
                },
            })
    }
}

impl Detector for Magnet {
    fn name(&self) -> &'static str {
        "magnet"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn fit(&mut self, clean: &Dataset) -> Result<(), DetectError> {
        if clean.is_empty() {
            return Err(DetectError::DegenerateInput {
                reason: "cannot fit MagNet on an empty dataset".into(),
            });
        }
        if clean.feature_dim() != self.dim {
            return Err(DetectError::DimensionMismatch {
                expected: self.dim,
                actual: clean.feature_dim(),
            });
        }
        self.rows.extend_from_slice(clean.features().as_slice());
        self.n += clean.len();
        opad_telemetry::counter_add("detector.fit_rows", clean.len() as u64);
        self.derive()
    }

    fn merge(&mut self, other: &Self) -> Result<(), DetectError> {
        if self.dim != other.dim || self.k != other.k {
            return Err(DetectError::MergeMismatch {
                reason: format!(
                    "MagNet shards disagree: dim {} vs {}, k {} vs {}",
                    self.dim, other.dim, self.k, other.k
                ),
            });
        }
        self.rows.extend_from_slice(&other.rows);
        self.n += other.n;
        opad_telemetry::counter_add("detector.merges", 1);
        self.derive()
    }

    fn score(&self, x: &[f32]) -> Result<f64, DetectError> {
        Ok(self.pca_or_err(x)?.reconstruction_error(x)?)
    }

    fn score_gradient(&self, x: &[f32]) -> Result<Vec<f32>, DetectError> {
        Ok(self.pca_or_err(x)?.reconstruction_error_gradient(x)?)
    }
}
