//! Micro-benchmark registry for the detector kernels (`obsctl bench`).

use crate::{score_batch, Detector, Dla, FeatureSqueeze, Lid, Magnet};
use opad_data::{gaussian_clusters, uniform_probs, GaussianClustersConfig};
use opad_nn::{Activation, Network};
use opad_telemetry::{BenchKernel, Benchmarkable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// The crate's [`Benchmarkable`] registry: the per-query cost of every
/// detector in the zoo, plus the batch scorer at 1 and 4 threads.
pub struct DetectBenches;

impl Benchmarkable for DetectBenches {
    fn bench_kernels() -> Vec<BenchKernel> {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = GaussianClustersConfig::default();
        let data = gaussian_clusters(&cfg, 200, &uniform_probs(3), &mut rng)
            .expect("default cluster config synthesises");
        let net = Network::mlp(&[2, 16, 3], Activation::Relu, &mut rng)
            .expect("static mlp dims are valid");

        let mut lid = Lid::new(net.clone(), 10).expect("k=10 is valid");
        lid.fit(&data).expect("200 clean rows fit LID");
        let mut squeeze = FeatureSqueeze::new(net.clone(), 4, 3).expect("4 bits / window 3");
        squeeze.fit(&data).expect("200 clean rows calibrate ranges");
        let mut magnet = Magnet::new(2, 1).expect("k=1 of dim 2");
        magnet
            .fit(&data)
            .expect("200 clean rows fit a 1-component PCA");
        let mut dla = Dla::new(net).expect("mlp has dense layers");
        dla.fit(&data).expect("200 clean rows fit unit stats");

        let q = [0.5f32, -0.5];
        // Serial-vs-parallel pair for the batch scorer: all 200 training
        // points against the n=200 LID banks with the pool pinned.
        let batch = data.features().clone();
        let lid_batch = lid.clone();
        let batch_at = |name: &'static str, threads: usize| {
            let (lid, batch) = (lid_batch.clone(), batch.clone());
            BenchKernel::new(name, move || {
                let _pin = opad_par::override_threads(threads);
                black_box(score_batch(&lid, &batch).expect("batch dim matches fit"));
            })
        };
        vec![
            BenchKernel::new("detect/lid_score_n200", move || {
                black_box(lid.score(&q).expect("query dim matches fit"));
            }),
            BenchKernel::new("detect/squeeze_score", move || {
                black_box(squeeze.score(&q).expect("query dim matches fit"));
            }),
            BenchKernel::new("detect/magnet_score", move || {
                black_box(magnet.score(&q).expect("query dim matches fit"));
            }),
            BenchKernel::new("detect/dla_score", move || {
                black_box(dla.score(&q).expect("query dim matches fit"));
            }),
            batch_at("detect/lid_batch_n200_t1", 1),
            batch_at("detect/lid_batch_n200_t4", 4),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_and_every_kernel_runs() {
        let mut kernels = DetectBenches::bench_kernels();
        assert!(kernels.len() >= 5);
        for k in &mut kernels {
            assert!(k.name.starts_with("detect/"), "{}", k.name);
            (k.run)();
        }
    }
}
