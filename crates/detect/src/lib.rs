//! # opad-detect
//!
//! The adversarial-example detector zoo, behind one [`Detector`] trait.
//!
//! The paper's central claim is that *operational context* changes which
//! adversarial examples matter; testing that claim needs the OP-density
//! signal to compete with the literature's detectors inside one harness.
//! This crate provides that harness:
//!
//! * [`Detector`] — fit / merge / score contract with PR-8-style sharding
//!   laws (merge of row-order shards is **bit-identical** to a
//!   single-shard fit);
//! * [`Lid`] — k-NN local intrinsic dimensionality over per-layer
//!   activations (Ma et al.);
//! * [`FeatureSqueeze`] — prediction shift under bit-depth quantization
//!   and median smoothing (Xu et al.);
//! * [`Magnet`] — PCA reconstruction error (MagNet-style, Meng & Chen);
//! * [`Dla`] — dense-layer activation z-scores (after Sperl et al.);
//! * [`OpDensityDetector`] — the paper's own naturalness signal wrapped
//!   as the fifth zoo member;
//! * [`auroc`] / [`roc_curve`] — rank-based evaluation, and
//!   [`score_batch`] — the deterministic parallel scorer.
//!
//! # Examples
//!
//! ```
//! use opad_data::{gaussian_clusters, uniform_probs, GaussianClustersConfig};
//! use opad_detect::{auroc, Detector, Magnet};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let cfg = GaussianClustersConfig::default();
//! let clean = gaussian_clusters(&cfg, 100, &uniform_probs(3), &mut rng)?;
//! let mut det = Magnet::new(2, 1)?;
//! det.fit(&clean)?;
//! let natural = det.score(&[0.0, 0.0])?;
//! let hostile = det.score(&[50.0, -50.0])?;
//! assert!(hostile > natural);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod bench;
mod detector;
mod dla;
mod error;
mod eval;
mod lid;
mod magnet;
mod opdensity;
mod squeeze;

pub use bench::DetectBenches;
pub use detector::{score_batch, Detector};
pub use dla::Dla;
pub use error::DetectError;
pub use eval::{auroc, roc_curve, RocCurve, RocPoint};
pub use lid::Lid;
pub use magnet::Magnet;
pub use opdensity::OpDensityDetector;
pub use squeeze::FeatureSqueeze;
