//! ROC / AUROC evaluation of detector scores.
//!
//! Convention: detectors emit *suspicion* scores (higher = more
//! adversarial), adversarial examples are the positive class, and a
//! threshold classifies `score ≥ t` as adversarial.

use crate::DetectError;
use serde::{Deserialize, Serialize};

/// One operating point of a detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// The decision threshold (`score ≥ threshold` ⇒ flagged).
    pub threshold: f64,
    /// False-positive rate: clean inputs flagged.
    pub fpr: f64,
    /// True-positive rate: adversarial inputs flagged.
    pub tpr: f64,
}

/// A full threshold sweep plus its area.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    /// Operating points from the strictest threshold (nothing flagged) to
    /// the loosest (everything flagged), monotone in both rates.
    pub points: Vec<RocPoint>,
    /// Area under the curve (ties counted half — identical to the
    /// rank-based [`auroc`]).
    pub auroc: f64,
}

fn check_scores(name: &str, scores: &[f64]) -> Result<(), DetectError> {
    if scores.is_empty() {
        return Err(DetectError::DegenerateInput {
            reason: format!("ROC needs at least one {name} score"),
        });
    }
    if let Some(bad) = scores.iter().find(|s| !s.is_finite()) {
        return Err(DetectError::DegenerateInput {
            reason: format!("non-finite {name} score {bad}"),
        });
    }
    Ok(())
}

/// Area under the ROC curve via the Mann–Whitney U statistic: the
/// probability that a random adversarial score exceeds a random clean
/// score, ties counted half. 1.0 = perfect separation, 0.5 = chance.
///
/// # Errors
///
/// Fails when either sample is empty or contains non-finite scores —
/// never returns NaN.
pub fn auroc(clean: &[f64], adv: &[f64]) -> Result<f64, DetectError> {
    check_scores("clean", clean)?;
    check_scores("adversarial", adv)?;
    let mut u = 0.0f64;
    for &a in adv {
        for &c in clean {
            if a > c {
                u += 1.0;
            } else if a == c {
                u += 0.5;
            }
        }
    }
    Ok(u / (adv.len() as f64 * clean.len() as f64))
}

/// Sweeps every distinct score as a threshold and returns the operating
/// points plus the area.
///
/// # Errors
///
/// Same as [`auroc`].
pub fn roc_curve(clean: &[f64], adv: &[f64]) -> Result<RocCurve, DetectError> {
    let area = auroc(clean, adv)?;
    let mut thresholds: Vec<f64> = clean.iter().chain(adv).copied().collect();
    thresholds.sort_unstable_by(|a, b| f64::total_cmp(b, a)); // descending
    thresholds.dedup();
    let mut points = Vec::with_capacity(thresholds.len() + 1);
    points.push(RocPoint {
        threshold: f64::INFINITY,
        fpr: 0.0,
        tpr: 0.0,
    });
    let frac_ge = |scores: &[f64], t: f64| {
        scores.iter().filter(|&&s| s >= t).count() as f64 / scores.len() as f64
    };
    for t in thresholds {
        points.push(RocPoint {
            threshold: t,
            fpr: frac_ge(clean, t),
            tpr: frac_ge(adv, t),
        });
    }
    Ok(RocCurve {
        points,
        auroc: area,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_is_one() {
        let clean = [0.0, 0.1, 0.2];
        let adv = [1.0, 2.0, 3.0];
        assert_eq!(auroc(&clean, &adv).unwrap(), 1.0);
        assert_eq!(auroc(&adv, &clean).unwrap(), 0.0);
    }

    #[test]
    fn all_tied_is_chance() {
        assert_eq!(auroc(&[0.5, 0.5], &[0.5, 0.5, 0.5]).unwrap(), 0.5);
    }

    #[test]
    fn hand_computed_mixed_case() {
        // adv=2 beats clean {1,3}: 1 win + 0 → adv=4 beats both: 2.
        // U = 3 of 4 pairs → 0.75.
        assert_eq!(auroc(&[1.0, 3.0], &[2.0, 4.0]).unwrap(), 0.75);
    }

    #[test]
    fn rejects_empty_and_non_finite() {
        assert!(auroc(&[], &[1.0]).is_err());
        assert!(auroc(&[1.0], &[]).is_err());
        assert!(auroc(&[f64::NAN], &[1.0]).is_err());
        assert!(auroc(&[1.0], &[f64::INFINITY]).is_err());
        assert!(roc_curve(&[1.0], &[]).is_err());
    }

    #[test]
    fn curve_endpoints_and_monotonicity() {
        let clean = [0.1, 0.2, 0.15];
        let adv = [0.8, 0.9];
        let curve = roc_curve(&clean, &adv).unwrap();
        let first = curve.points.first().unwrap();
        let last = curve.points.last().unwrap();
        assert_eq!((first.fpr, first.tpr), (0.0, 0.0));
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
        for pair in curve.points.windows(2) {
            assert!(pair[1].fpr >= pair[0].fpr);
            assert!(pair[1].tpr >= pair[0].tpr);
            assert!(pair[1].threshold <= pair[0].threshold);
        }
        assert_eq!(curve.auroc, 1.0);
    }

    #[test]
    fn trapezoid_over_curve_matches_rank_auroc() {
        // Overlapping scores with ties: the curve's trapezoid area must
        // equal the Mann–Whitney value.
        let clean = [0.1, 0.4, 0.4, 0.7];
        let adv = [0.3, 0.4, 0.8, 0.9];
        let curve = roc_curve(&clean, &adv).unwrap();
        let mut trap = 0.0;
        for pair in curve.points.windows(2) {
            trap += (pair[1].fpr - pair[0].fpr) * (pair[1].tpr + pair[0].tpr) / 2.0;
        }
        let rank = auroc(&clean, &adv).unwrap();
        assert!((trap - rank).abs() < 1e-12, "{trap} vs {rank}");
    }
}
