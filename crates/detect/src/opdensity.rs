//! The paper's own detector: operational-profile density ("naturalness").
//!
//! Zhao et al. flag inputs that are *operationally unnatural* — low
//! density under the learned OP — because an AE the deployed system will
//! never encounter contributes nothing to operational unreliability. This
//! wrapper turns any prefit [`Density`] into a [`Detector`] so the OP
//! signal competes in the same ROC harness as the literature detectors,
//! and so `opad-attack`'s naturalness oracle routes through the shared
//! trait.

use crate::{DetectError, Detector};
use opad_data::Dataset;
use opad_opmodel::Density;
use serde::{Deserialize, Serialize};

/// Negated OP log-density as a suspicion score (higher = less natural =
/// more adversarial).
///
/// The density is fitted *before* wrapping (by `opmodel`'s estimators),
/// so `fit` only validates dimensions and `merge` requires both shards to
/// wrap the same fitted density.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct OpDensityDetector<D> {
    density: D,
}

impl<D> OpDensityDetector<D> {
    /// Wraps a prefit density.
    pub fn new(density: D) -> Self {
        OpDensityDetector { density }
    }

    /// The wrapped density.
    pub fn density(&self) -> &D {
        &self.density
    }

    /// Unwraps the density.
    pub fn into_inner(self) -> D {
        self.density
    }
}

impl<D: Density + PartialEq> Detector for OpDensityDetector<D> {
    fn name(&self) -> &'static str {
        "op_density"
    }

    fn dim(&self) -> usize {
        self.density.dim()
    }

    fn fit(&mut self, clean: &Dataset) -> Result<(), DetectError> {
        if clean.is_empty() {
            return Err(DetectError::DegenerateInput {
                reason: "cannot fit op-density on an empty dataset".into(),
            });
        }
        if clean.feature_dim() != self.density.dim() {
            return Err(DetectError::DimensionMismatch {
                expected: self.density.dim(),
                actual: clean.feature_dim(),
            });
        }
        // The density is prefit; the clean data only re-confirms the
        // schema.
        opad_telemetry::counter_add("detector.fit_rows", clean.len() as u64);
        Ok(())
    }

    fn merge(&mut self, other: &Self) -> Result<(), DetectError> {
        if self.density != other.density {
            return Err(DetectError::MergeMismatch {
                reason: "op-density shards wrap different fitted densities".into(),
            });
        }
        opad_telemetry::counter_add("detector.merges", 1);
        Ok(())
    }

    fn score(&self, x: &[f32]) -> Result<f64, DetectError> {
        Ok(-self.density.log_density(x)?)
    }

    fn score_gradient(&self, x: &[f32]) -> Result<Vec<f32>, DetectError> {
        let mut g = self.density.grad_log_density(x)?;
        for v in &mut g {
            *v = -*v;
        }
        Ok(g)
    }
}
