//! Local Intrinsic Dimensionality (LID) detection.
//!
//! Ma et al. (ICLR 2018) observed that adversarial examples sit in regions
//! of higher local intrinsic dimensionality than natural data: an AE must
//! leave the data manifold to cross a decision boundary, and the
//! maximum-likelihood LID estimate over k-nearest-neighbour distances in
//! every layer's activation space picks that up. Score = mean LID estimate
//! across layers (higher = more adversarial).

use crate::{DetectError, Detector};
use opad_data::Dataset;
use opad_nn::Network;
use opad_tensor::Tensor;

/// Per-layer bank of reference activations (row-major, canonical fit
/// order).
#[derive(Debug, Clone)]
struct LayerBank {
    width: usize,
    rows: Vec<f32>,
}

/// k-NN LID detector over per-layer activations of a fixed network.
///
/// `fit` records the activations of clean data at **every** layer tap of
/// the wrapped network (via `Network::forward_recording`); `score` runs
/// the query through the same network and averages the maximum-likelihood
/// LID estimate across layers.
#[derive(Debug, Clone)]
pub struct Lid {
    net: Network,
    k: usize,
    dim: usize,
    banks: Vec<LayerBank>,
    n: usize,
}

impl Lid {
    /// Creates an unfitted LID detector over `net` with neighbourhood
    /// size `k`.
    ///
    /// # Errors
    ///
    /// Fails when `k == 0` or the network's input width is unknown.
    pub fn new(net: Network, k: usize) -> Result<Self, DetectError> {
        if k == 0 {
            return Err(DetectError::InvalidConfig {
                reason: "LID neighbourhood size k must be ≥ 1".into(),
            });
        }
        let dim = net.input_dim().ok_or_else(|| DetectError::InvalidConfig {
            reason: "LID needs a network with a known input width".into(),
        })?;
        Ok(Lid {
            net,
            k,
            dim,
            banks: Vec::new(),
            n: 0,
        })
    }

    /// Neighbourhood size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of reference rows accumulated so far.
    pub fn reference_len(&self) -> usize {
        self.n
    }

    /// Maximum-likelihood LID estimate from a query's activation `a` and a
    /// bank of reference activations. Returns an error when fewer than
    /// `k + 1` references exist.
    fn layer_lid(&self, a: &[f32], bank: &LayerBank) -> Result<f64, DetectError> {
        let w = bank.width;
        let n = bank.rows.len() / w;
        if n < self.k + 1 {
            return Err(DetectError::DegenerateInput {
                reason: format!(
                    "LID with k={} needs ≥ {} reference rows, have {n}",
                    self.k,
                    self.k + 1
                ),
            });
        }
        let mut dists: Vec<f64> = (0..n)
            .map(|i| {
                bank.rows[i * w..(i + 1) * w]
                    .iter()
                    .zip(a)
                    .map(|(&r, &q)| {
                        let d = (r - q) as f64;
                        d * d
                    })
                    .sum::<f64>()
                    .sqrt()
            })
            .collect();
        dists.sort_unstable_by(f64::total_cmp);
        // Skip a zero leading distance (the query coinciding with one
        // reference) so self-matches during evaluation don't zero out the
        // estimate, then take the k nearest.
        let start = usize::from(dists[0] == 0.0 && n > self.k + 1);
        let knn = &dists[start..start + self.k];
        let d_k = knn[self.k - 1];
        if d_k <= 0.0 {
            // All k neighbours coincide with the query: zero local
            // dimensionality, minimal suspicion.
            return Ok(0.0);
        }
        let floor = d_k * 1e-12;
        let sum: f64 = knn.iter().map(|&d| (d.max(floor) / d_k).ln()).sum();
        // sum ≤ 0; clamp so uniform neighbourhoods give a large finite LID
        // instead of ∞.
        Ok(-(self.k as f64) / sum.min(-1e-9))
    }
}

impl Detector for Lid {
    fn name(&self) -> &'static str {
        "lid"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn fit(&mut self, clean: &Dataset) -> Result<(), DetectError> {
        if clean.is_empty() {
            return Err(DetectError::DegenerateInput {
                reason: "cannot fit LID on an empty dataset".into(),
            });
        }
        if clean.feature_dim() != self.dim {
            return Err(DetectError::DimensionMismatch {
                expected: self.dim,
                actual: clean.feature_dim(),
            });
        }
        let taps = self.net.forward_recording(clean.features())?;
        if self.banks.is_empty() {
            self.banks = taps
                .iter()
                .map(|t| LayerBank {
                    width: t.dims()[1],
                    rows: Vec::new(),
                })
                .collect();
        }
        for (bank, tap) in self.banks.iter_mut().zip(&taps) {
            bank.rows.extend_from_slice(tap.as_slice());
        }
        self.n += clean.len();
        opad_telemetry::counter_add("detector.fit_rows", clean.len() as u64);
        Ok(())
    }

    fn merge(&mut self, other: &Self) -> Result<(), DetectError> {
        if self.k != other.k || self.dim != other.dim {
            return Err(DetectError::MergeMismatch {
                reason: format!(
                    "LID shards disagree: k {} vs {}, dim {} vs {}",
                    self.k, other.k, self.dim, other.dim
                ),
            });
        }
        if other.n == 0 {
            return Ok(());
        }
        if self.n == 0 {
            self.banks = other.banks.clone();
            self.n = other.n;
        } else {
            if self.banks.len() != other.banks.len() {
                return Err(DetectError::MergeMismatch {
                    reason: "LID shards tapped different layer counts".into(),
                });
            }
            for (mine, theirs) in self.banks.iter_mut().zip(&other.banks) {
                if mine.width != theirs.width {
                    return Err(DetectError::MergeMismatch {
                        reason: "LID shards disagree on a layer width".into(),
                    });
                }
                mine.rows.extend_from_slice(&theirs.rows);
            }
            self.n += other.n;
        }
        opad_telemetry::counter_add("detector.merges", 1);
        Ok(())
    }

    fn score(&self, x: &[f32]) -> Result<f64, DetectError> {
        if x.len() != self.dim {
            return Err(DetectError::DimensionMismatch {
                expected: self.dim,
                actual: x.len(),
            });
        }
        if self.n == 0 {
            return Err(DetectError::NotFitted { detector: "lid" });
        }
        let query = Tensor::from_vec(x.to_vec(), &[1, self.dim])?;
        let taps = self.net.forward_recording(&query)?;
        let mut total = 0.0f64;
        for (bank, tap) in self.banks.iter().zip(&taps) {
            total += self.layer_lid(tap.as_slice(), bank)?;
        }
        Ok(total / self.banks.len() as f64)
    }
}
