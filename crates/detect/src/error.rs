//! Error type for the detector zoo.

use thiserror::Error;

/// Everything that can go wrong fitting, merging or scoring a detector.
#[derive(Debug, Error, Clone, PartialEq)]
pub enum DetectError {
    /// A tensor shape/arithmetic failure bubbled up.
    #[error(transparent)]
    Tensor(#[from] opad_tensor::TensorError),

    /// A network forward pass failed.
    #[error(transparent)]
    Network(#[from] opad_nn::NnError),

    /// An OP-model (density / PCA) operation failed.
    #[error(transparent)]
    OpModel(#[from] opad_opmodel::OpModelError),

    /// The detector was constructed with invalid parameters.
    #[error("invalid detector config: {reason}")]
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },

    /// The input has the wrong dimensionality for this detector.
    #[error("dimension mismatch: detector expects {expected}, got {actual}")]
    DimensionMismatch {
        /// Dimensionality the detector was built for.
        expected: usize,
        /// Dimensionality of the offending input.
        actual: usize,
    },

    /// `score` was called before any reference data was fitted.
    #[error("detector `{detector}` is not fitted")]
    NotFitted {
        /// Name of the detector.
        detector: &'static str,
    },

    /// The fitted reference data cannot support scoring (too few rows,
    /// zero variance, …). Scores are errors here — never NaN.
    #[error("degenerate reference data: {reason}")]
    DegenerateInput {
        /// Why the reference set is unusable.
        reason: String,
    },

    /// Two shards disagree on state that must match to merge.
    #[error("cannot merge detector shards: {reason}")]
    MergeMismatch {
        /// What differed between the shards.
        reason: String,
    },
}
