//! Dense-layer-activation (DLA) analysis (after Sperl et al., EuroS&P
//! 2020).
//!
//! DLA watches the network's *dense-layer* activations: adversarial
//! inputs, even when the final prediction looks confident, drive hidden
//! dense units into statistically unusual configurations. Sperl et al.
//! train a secondary classifier on the concatenated dense activations;
//! this from-scratch variant fits per-unit Gaussians on clean activations
//! and scores the mean squared z-score of a query's units (higher = more
//! adversarial) — the same alarm, without a second network to train.

use crate::{DetectError, Detector};
use opad_data::Dataset;
use opad_nn::Network;
use opad_tensor::Tensor;

/// Per-unit clean statistics (computed in f64 from the canonical row
/// order).
#[derive(Debug, Clone)]
struct UnitStat {
    mean: f64,
    std: f64,
}

/// Dense-layer activation detector over a fixed network.
#[derive(Debug, Clone)]
pub struct Dla {
    net: Network,
    dim: usize,
    dense_idx: Vec<usize>,
    width: usize,
    rows: Vec<f32>,
    n: usize,
    stats: Option<Vec<UnitStat>>,
}

impl Dla {
    /// Creates an unfitted DLA detector tapping every dense layer of
    /// `net`.
    ///
    /// # Errors
    ///
    /// Fails when the network has no dense layers or no known input
    /// width.
    pub fn new(net: Network) -> Result<Self, DetectError> {
        let dense_idx = net.dense_layer_indices();
        if dense_idx.is_empty() {
            return Err(DetectError::InvalidConfig {
                reason: "DLA needs a network with at least one dense layer".into(),
            });
        }
        let dim = net.input_dim().ok_or_else(|| DetectError::InvalidConfig {
            reason: "DLA needs a network with a known input width".into(),
        })?;
        Ok(Dla {
            net,
            dim,
            dense_idx,
            width: 0,
            rows: Vec::new(),
            n: 0,
            stats: None,
        })
    }

    /// Number of clean reference rows accumulated.
    pub fn reference_len(&self) -> usize {
        self.n
    }

    /// Runs a `[n, dim]` batch and returns the concatenated dense-layer
    /// activations as `(width, row-major values)`.
    fn dense_activations(&self, batch: &Tensor) -> Result<(usize, Vec<f32>), DetectError> {
        let taps = self.net.forward_recording(batch)?;
        let n = batch.dims()[0];
        let width: usize = self.dense_idx.iter().map(|&i| taps[i].dims()[1]).sum();
        let mut rows = Vec::with_capacity(n * width);
        for r in 0..n {
            for &i in &self.dense_idx {
                let w = taps[i].dims()[1];
                rows.extend_from_slice(&taps[i].as_slice()[r * w..(r + 1) * w]);
            }
        }
        Ok((width, rows))
    }

    /// Recomputes per-unit mean/std from the canonical row order. Stays
    /// unfitted below 2 rows or when every unit has zero variance.
    fn derive(&mut self) {
        self.stats = None;
        if self.n < 2 {
            return;
        }
        let w = self.width;
        let mut stats: Vec<UnitStat> = (0..w)
            .map(|_| UnitStat {
                mean: 0.0,
                std: 0.0,
            })
            .collect();
        for row in self.rows.chunks_exact(w) {
            for (s, &v) in stats.iter_mut().zip(row) {
                s.mean += v as f64;
            }
        }
        for s in &mut stats {
            s.mean /= self.n as f64;
        }
        for row in self.rows.chunks_exact(w) {
            for (s, &v) in stats.iter_mut().zip(row) {
                let dev = v as f64 - s.mean;
                s.std += dev * dev;
            }
        }
        let mut usable = 0usize;
        for s in &mut stats {
            s.std = (s.std / (self.n - 1) as f64).sqrt();
            if s.std > 1e-12 {
                usable += 1;
            }
        }
        if usable > 0 {
            self.stats = Some(stats);
        }
    }
}

impl Detector for Dla {
    fn name(&self) -> &'static str {
        "dla"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn fit(&mut self, clean: &Dataset) -> Result<(), DetectError> {
        if clean.is_empty() {
            return Err(DetectError::DegenerateInput {
                reason: "cannot fit DLA on an empty dataset".into(),
            });
        }
        if clean.feature_dim() != self.dim {
            return Err(DetectError::DimensionMismatch {
                expected: self.dim,
                actual: clean.feature_dim(),
            });
        }
        let (width, rows) = self.dense_activations(clean.features())?;
        self.width = width;
        self.rows.extend_from_slice(&rows);
        self.n += clean.len();
        opad_telemetry::counter_add("detector.fit_rows", clean.len() as u64);
        self.derive();
        Ok(())
    }

    fn merge(&mut self, other: &Self) -> Result<(), DetectError> {
        if self.dim != other.dim || self.dense_idx != other.dense_idx {
            return Err(DetectError::MergeMismatch {
                reason: "DLA shards disagree on dim or tapped dense layers".into(),
            });
        }
        if other.n > 0 {
            if self.n > 0 && self.width != other.width {
                return Err(DetectError::MergeMismatch {
                    reason: "DLA shards disagree on total dense width".into(),
                });
            }
            self.width = other.width;
            self.rows.extend_from_slice(&other.rows);
            self.n += other.n;
        }
        opad_telemetry::counter_add("detector.merges", 1);
        self.derive();
        Ok(())
    }

    fn score(&self, x: &[f32]) -> Result<f64, DetectError> {
        if x.len() != self.dim {
            return Err(DetectError::DimensionMismatch {
                expected: self.dim,
                actual: x.len(),
            });
        }
        if self.n == 0 {
            return Err(DetectError::NotFitted { detector: "dla" });
        }
        let stats = self
            .stats
            .as_ref()
            .ok_or_else(|| DetectError::DegenerateInput {
                reason: if self.n < 2 {
                    format!("DLA needs ≥ 2 reference rows, have {}", self.n)
                } else {
                    "every dense unit has zero variance on the reference data".into()
                },
            })?;
        let query = Tensor::from_vec(x.to_vec(), &[1, self.dim])?;
        let (_, acts) = self.dense_activations(&query)?;
        let mut total = 0.0f64;
        let mut usable = 0usize;
        for (s, &a) in stats.iter().zip(&acts) {
            if s.std > 1e-12 {
                let z = (a as f64 - s.mean) / s.std;
                total += z * z;
                usable += 1;
            }
        }
        Ok(total / usable as f64)
    }
}
