//! Golden ROC/AUROC pins and the degenerate-input suite.
//!
//! The separable fixture is closed-form (clean data exactly on a line,
//! adversarial points pushed off it orthogonally), so the rank-based
//! AUROC of the reconstruction and density detectors is *exactly* 1.0 —
//! pinned with `assert_eq!`, not a tolerance. The degenerate suite pins
//! the other half of the [`opad_detect::Detector`] contract: constant
//! features, single samples, empty fits and unfitted scoring produce
//! typed errors (or defined finite values), never NaN.

use opad_data::Dataset;
use opad_detect::{
    auroc, roc_curve, score_batch, DetectError, Detector, Dla, FeatureSqueeze, Lid, Magnet,
    OpDensityDetector,
};
use opad_nn::{Activation, ActivationLayer, Dense, Layer, Network};
use opad_opmodel::{Gmm, GmmComponent};
use opad_tensor::Tensor;

const N: usize = 48;

/// Deterministic clean cloud exactly on the line `y = -x / 2`.
fn cloud(seed: u64, n: usize) -> Tensor {
    Tensor::from_fn(&[n, 2], |ix| {
        let t = (ix[0] as u64).wrapping_mul(2654435761).wrapping_add(seed) % 997;
        let v = t as f32 / 997.0 * 8.0 - 4.0;
        if ix[1] == 0 {
            v
        } else {
            -v * 0.5
        }
    })
}

fn dataset(seed: u64, n: usize) -> Dataset {
    Dataset::new(cloud(seed, n), (0..n).map(|i| i % 3).collect(), 3).unwrap()
}

/// Every clean point shifted by the off-manifold direction `(1.5, 3.0)`
/// (orthogonal to the data line, norm > the widest clean excursion).
fn adversarial(seed: u64, n: usize) -> Tensor {
    let base = cloud(seed, n);
    Tensor::from_fn(&[n, 2], |ix| {
        base.as_slice()[ix[0] * 2 + ix[1]] + if ix[1] == 0 { 1.5 } else { 3.0 }
    })
}

fn fixed_net() -> Network {
    let w1 = Tensor::from_vec(vec![1.0, 0.0, 0.5, 0.0, 1.0, -0.5], &[2, 3]).unwrap();
    let b1 = Tensor::from_vec(vec![0.1, 0.2, 0.3], &[3]).unwrap();
    let w2 =
        Tensor::from_vec(vec![1.0, 0.0, -1.0, 0.0, 1.0, 0.0, -1.0, 0.0, 1.0], &[3, 3]).unwrap();
    let b2 = Tensor::from_vec(vec![0.0, 0.0, 0.0], &[3]).unwrap();
    Network::new(vec![
        Layer::Dense(Dense::from_params(w1, b1).unwrap()),
        Layer::Activation(ActivationLayer::new(Activation::Relu)),
        Layer::Dense(Dense::from_params(w2, b2).unwrap()),
    ])
    .unwrap()
}

fn gmm() -> Gmm {
    Gmm::from_components(vec![GmmComponent {
        weight: 1.0,
        mean: vec![0.0, 0.0],
        std: 2.0,
    }])
    .unwrap()
}

fn sweep<D: Detector + Sync>(det: &D) -> (Vec<f64>, Vec<f64>) {
    let clean = score_batch(det, &cloud(21, N)).unwrap();
    let adv = score_batch(det, &adversarial(21, N)).unwrap();
    for s in clean.iter().chain(&adv) {
        assert!(s.is_finite(), "{}: non-finite score {s}", det.name());
    }
    (clean, adv)
}

#[test]
fn magnet_auroc_is_exactly_one_on_separable_data() {
    // Clean points lie exactly on the rank-1 manifold the PCA learns —
    // residuals are fp dust — while each adversarial residual is ≈ the
    // squared orthogonal shift (1.5² + 3² = 11.25). Perfect ranking.
    let mut det = Magnet::new(2, 1).unwrap();
    det.fit(&dataset(20, N)).unwrap();
    let (clean, adv) = sweep(&det);
    assert_eq!(auroc(&clean, &adv).unwrap(), 1.0);
    assert!(
        adv.iter().all(|&s| s > 10.0),
        "adv residual ≈ 11.25 expected"
    );
    assert!(clean.iter().all(|&s| s < 1e-3), "clean residual is fp dust");
}

#[test]
fn op_density_auroc_is_exactly_one_on_separable_data() {
    // Under the isotropic Gaussian at the origin the density is monotone
    // in ‖x‖, and the orthogonal shift makes every adversarial norm
    // exceed every clean norm — so the ranking is again perfect.
    let mut det = OpDensityDetector::new(gmm());
    det.fit(&dataset(20, N)).unwrap();
    let (clean, adv) = sweep(&det);
    assert_eq!(auroc(&clean, &adv).unwrap(), 1.0);
}

#[test]
fn every_detector_separates_the_golden_fixture() {
    let ds = dataset(20, N);
    let check = |clean: Vec<f64>, adv: Vec<f64>, name: &str| {
        let a = auroc(&clean, &adv).unwrap();
        assert!(a >= 0.9, "{name}: AUROC {a} below the 0.9 floor");
        let curve = roc_curve(&clean, &adv).unwrap();
        assert_eq!(curve.auroc, a);
        let first = curve.points.first().unwrap();
        let last = curve.points.last().unwrap();
        assert_eq!((first.fpr, first.tpr), (0.0, 0.0));
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
    };
    let mut lid = Lid::new(fixed_net(), 5).unwrap();
    lid.fit(&ds).unwrap();
    let (c, a) = sweep(&lid);
    check(c, a, "lid");

    let mut squeeze = FeatureSqueeze::new(fixed_net(), 4, 3).unwrap();
    squeeze.fit(&ds).unwrap();
    let (c, a) = sweep(&squeeze);
    check(c, a, "feature_squeeze");

    let mut dla = Dla::new(fixed_net()).unwrap();
    dla.fit(&ds).unwrap();
    let (c, a) = sweep(&dla);
    check(c, a, "dla");
}

#[test]
fn roc_curve_golden_hand_computed() {
    // 16 pairs, 15 adversarial wins → AUROC 15/16. Every operating point
    // below is a hand-derived exact fraction.
    let clean = [0.1, 0.2, 0.3, 0.4];
    let adv = [0.35, 0.5, 0.6, 0.7];
    let curve = roc_curve(&clean, &adv).unwrap();
    assert_eq!(curve.auroc, 0.9375);
    let expect: Vec<(f64, f64, f64)> = vec![
        (f64::INFINITY, 0.0, 0.0),
        (0.7, 0.0, 0.25),
        (0.6, 0.0, 0.5),
        (0.5, 0.0, 0.75),
        (0.4, 0.25, 0.75),
        (0.35, 0.25, 1.0),
        (0.3, 0.5, 1.0),
        (0.2, 0.75, 1.0),
        (0.1, 1.0, 1.0),
    ];
    assert_eq!(curve.points.len(), expect.len());
    for (p, (t, fpr, tpr)) in curve.points.iter().zip(&expect) {
        assert_eq!((p.threshold, p.fpr, p.tpr), (*t, *fpr, *tpr));
    }
}

// ---- degenerate-input suite: typed errors, never NaN ----

fn constant_dataset(n: usize) -> Dataset {
    Dataset::new(Tensor::full(&[n, 2], 1.0), vec![0; n], 3).unwrap()
}

fn empty_dataset() -> Dataset {
    Dataset::new(Tensor::from_vec(vec![], &[0, 2]).unwrap(), vec![], 3).unwrap()
}

#[test]
fn constant_features_are_reported_not_nan() {
    let ds = constant_dataset(8);

    let mut magnet = Magnet::new(2, 1).unwrap();
    magnet.fit(&ds).unwrap();
    assert!(matches!(
        magnet.score(&[1.0, 1.0]),
        Err(DetectError::DegenerateInput { .. })
    ));

    let mut dla = Dla::new(fixed_net()).unwrap();
    dla.fit(&ds).unwrap();
    assert!(matches!(
        dla.score(&[1.0, 1.0]),
        Err(DetectError::DegenerateInput { .. })
    ));

    let mut squeeze = FeatureSqueeze::new(fixed_net(), 4, 3).unwrap();
    squeeze.fit(&ds).unwrap();
    assert!(matches!(
        squeeze.score(&[1.0, 1.0]),
        Err(DetectError::DegenerateInput { .. })
    ));

    // LID defines the collapsed neighbourhood: coincident references give
    // zero local dimensionality, and a distinct query sees a uniform
    // (huge but finite) one. Neither is NaN.
    let mut lid = Lid::new(fixed_net(), 5).unwrap();
    lid.fit(&ds).unwrap();
    assert_eq!(lid.score(&[1.0, 1.0]).unwrap(), 0.0);
    assert!(lid.score(&[2.0, -1.0]).unwrap().is_finite());
}

#[test]
fn single_sample_fits_cannot_support_scores() {
    let one = dataset(30, 1);

    let mut magnet = Magnet::new(2, 1).unwrap();
    magnet.fit(&one).unwrap();
    assert!(matches!(
        magnet.score(&[0.0, 0.0]),
        Err(DetectError::DegenerateInput { .. })
    ));

    let mut dla = Dla::new(fixed_net()).unwrap();
    dla.fit(&one).unwrap();
    assert!(matches!(
        dla.score(&[0.0, 0.0]),
        Err(DetectError::DegenerateInput { .. })
    ));

    let mut squeeze = FeatureSqueeze::new(fixed_net(), 4, 3).unwrap();
    squeeze.fit(&one).unwrap();
    assert!(matches!(
        squeeze.score(&[0.0, 0.0]),
        Err(DetectError::DegenerateInput { .. })
    ));

    let mut lid = Lid::new(fixed_net(), 5).unwrap();
    lid.fit(&one).unwrap();
    assert!(matches!(
        lid.score(&[0.0, 0.0]),
        Err(DetectError::DegenerateInput { .. })
    ));
}

#[test]
fn empty_fit_is_an_error_for_the_whole_zoo() {
    let empty = empty_dataset();
    assert!(matches!(
        Lid::new(fixed_net(), 5).unwrap().fit(&empty),
        Err(DetectError::DegenerateInput { .. })
    ));
    assert!(matches!(
        FeatureSqueeze::new(fixed_net(), 4, 3).unwrap().fit(&empty),
        Err(DetectError::DegenerateInput { .. })
    ));
    assert!(matches!(
        Magnet::new(2, 1).unwrap().fit(&empty),
        Err(DetectError::DegenerateInput { .. })
    ));
    assert!(matches!(
        Dla::new(fixed_net()).unwrap().fit(&empty),
        Err(DetectError::DegenerateInput { .. })
    ));
    assert!(matches!(
        OpDensityDetector::new(gmm()).fit(&empty),
        Err(DetectError::DegenerateInput { .. })
    ));
}

#[test]
fn scoring_before_fit_is_not_fitted() {
    let x = [0.0f32, 0.0];
    assert!(matches!(
        Lid::new(fixed_net(), 5).unwrap().score(&x),
        Err(DetectError::NotFitted { detector: "lid" })
    ));
    assert!(matches!(
        FeatureSqueeze::new(fixed_net(), 4, 3).unwrap().score(&x),
        Err(DetectError::NotFitted {
            detector: "feature_squeeze"
        })
    ));
    assert!(matches!(
        Magnet::new(2, 1).unwrap().score(&x),
        Err(DetectError::NotFitted { detector: "magnet" })
    ));
    assert!(matches!(
        Dla::new(fixed_net()).unwrap().score(&x),
        Err(DetectError::NotFitted { detector: "dla" })
    ));
}

#[test]
fn dimension_mismatches_are_typed() {
    let mut magnet = Magnet::new(2, 1).unwrap();
    magnet.fit(&dataset(31, 8)).unwrap();
    assert!(matches!(
        magnet.score(&[1.0, 2.0, 3.0]),
        Err(DetectError::DimensionMismatch {
            expected: 2,
            actual: 3
        })
    ));
    let three_wide = Dataset::new(Tensor::full(&[4, 3], 0.5), vec![0; 4], 3).unwrap();
    assert!(matches!(
        magnet.fit(&three_wide),
        Err(DetectError::DimensionMismatch {
            expected: 2,
            actual: 3
        })
    ));
    assert!(matches!(
        score_batch(&magnet, three_wide.features()),
        Err(DetectError::DimensionMismatch {
            expected: 2,
            actual: 3
        })
    ));
}

#[test]
fn fitted_detectors_stay_finite_across_a_wide_probe_grid() {
    let ds = dataset(32, N);
    let grid = Tensor::from_fn(&[25, 2], |ix| {
        let (i, j) = (ix[0] / 5, ix[0] % 5);
        let v = [-50.0f32, -7.5, 0.0, 7.5, 50.0];
        if ix[1] == 0 {
            v[i]
        } else {
            v[j]
        }
    });
    let mut lid = Lid::new(fixed_net(), 5).unwrap();
    lid.fit(&ds).unwrap();
    let mut squeeze = FeatureSqueeze::new(fixed_net(), 4, 3).unwrap();
    squeeze.fit(&ds).unwrap();
    let mut magnet = Magnet::new(2, 1).unwrap();
    magnet.fit(&ds).unwrap();
    let mut dla = Dla::new(fixed_net()).unwrap();
    dla.fit(&ds).unwrap();
    for s in score_batch(&lid, &grid)
        .unwrap()
        .into_iter()
        .chain(score_batch(&squeeze, &grid).unwrap())
        .chain(score_batch(&magnet, &grid).unwrap())
        .chain(score_batch(&dla, &grid).unwrap())
    {
        assert!(s.is_finite(), "detector emitted non-finite score {s}");
    }
}
