//! Cross-detector laws: every member of the zoo must (1) score
//! deterministically at any `OPAD_THREADS` setting, (2) keep sharded
//! fit-then-merge **bit-identical** to a single-shard fit at shard counts
//! {1, 2, 4, 8} — the same contract `opmodel`'s sufficient statistics obey
//! in `merge_laws.rs` — and (3) rank clearly-perturbed inputs above the
//! clean data they were fitted on.
//!
//! Generators are deterministic closed forms and the network weights are
//! hand-written constants; no RNG crate is involved, so the laws hold
//! identically on every platform and thread count.

use opad_data::Dataset;
use opad_detect::{score_batch, Detector, Dla, FeatureSqueeze, Lid, Magnet, OpDensityDetector};
use opad_nn::{Activation, ActivationLayer, Dense, Layer, Network};
use opad_opmodel::{Gmm, GmmComponent};
use opad_tensor::Tensor;

const N: usize = 48;

/// A deterministic [n, 2] point cloud lying exactly on the line
/// `y = -x / 2` (the same closed form as `opmodel`'s merge-law cloud), so
/// the PCA reconstructor has a perfect rank-1 manifold to learn.
fn cloud(seed: u64, n: usize) -> Tensor {
    Tensor::from_fn(&[n, 2], |ix| {
        let t = (ix[0] as u64).wrapping_mul(2654435761).wrapping_add(seed) % 997;
        let v = t as f32 / 997.0 * 8.0 - 4.0;
        if ix[1] == 0 {
            v
        } else {
            -v * 0.5
        }
    })
}

fn labels_for(n: usize) -> Vec<usize> {
    (0..n).map(|i| i % 3).collect()
}

fn dataset(seed: u64, n: usize) -> Dataset {
    Dataset::new(cloud(seed, n), labels_for(n), 3).expect("closed-form dataset is valid")
}

/// A fixed-weight 2 → 3 → 3 ReLU MLP. Hand-written parameters keep every
/// forward pass a pure closed form.
fn fixed_net() -> Network {
    let w1 = Tensor::from_vec(vec![1.0, 0.0, 0.5, 0.0, 1.0, -0.5], &[2, 3]).unwrap();
    let b1 = Tensor::from_vec(vec![0.1, 0.2, 0.3], &[3]).unwrap();
    let w2 =
        Tensor::from_vec(vec![1.0, 0.0, -1.0, 0.0, 1.0, 0.0, -1.0, 0.0, 1.0], &[3, 3]).unwrap();
    let b2 = Tensor::from_vec(vec![0.0, 0.0, 0.0], &[3]).unwrap();
    Network::new(vec![
        Layer::Dense(Dense::from_params(w1, b1).unwrap()),
        Layer::Activation(ActivationLayer::new(Activation::Relu)),
        Layer::Dense(Dense::from_params(w2, b2).unwrap()),
    ])
    .expect("fixed layer stack is valid")
}

fn gmm() -> Gmm {
    Gmm::from_components(vec![GmmComponent {
        weight: 1.0,
        mean: vec![0.0, 0.0],
        std: 2.0,
    }])
    .unwrap()
}

/// Probe points: two on the clean manifold, two off it.
fn queries() -> Vec<[f32; 2]> {
    vec![[0.5, -0.25], [-2.0, 1.0], [3.0, 3.0], [0.6, 1.2]]
}

/// Splits the canonical dataset into `shards` row-order chunks
/// (`div_ceil` geometry, mirroring `shard_ranges`), skipping empty tails.
fn shard_datasets(data: &Tensor, labels: &[usize], shards: usize) -> Vec<Dataset> {
    let n = data.dims()[0];
    let d = data.dims()[1];
    let chunk = n.div_ceil(shards);
    let mut out = Vec::new();
    for s in 0..shards {
        let lo = (s * chunk).min(n);
        let hi = ((s + 1) * chunk).min(n);
        if lo == hi {
            continue;
        }
        let rows = data.as_slice()[lo * d..hi * d].to_vec();
        let features = Tensor::from_vec(rows, &[hi - lo, d]).unwrap();
        out.push(Dataset::new(features, labels[lo..hi].to_vec(), 3).unwrap());
    }
    out
}

/// The shard law: fit one detector per row-order shard, fold the shards in
/// order into a fresh detector, and demand bitwise score equality with a
/// single fit over the whole set.
fn assert_shard_law<D: Detector>(make: impl Fn() -> D, name: &str) {
    let whole_ds = dataset(1, N);
    let mut whole = make();
    whole.fit(&whole_ds).unwrap();
    for shards in [1usize, 2, 4, 8] {
        let mut merged = make();
        for shard in shard_datasets(whole_ds.features(), whole_ds.labels(), shards) {
            let mut part = make();
            part.fit(&shard).unwrap();
            merged.merge(&part).unwrap();
        }
        for q in queries() {
            let a = whole.score(&q).unwrap();
            let b = merged.score(&q).unwrap();
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{name}: {shards}-shard merge diverged at {q:?}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn lid_shard_merge_matches_single_fit_bitwise() {
    assert_shard_law(|| Lid::new(fixed_net(), 5).unwrap(), "lid");
}

#[test]
fn squeeze_shard_merge_matches_single_fit_bitwise() {
    assert_shard_law(
        || FeatureSqueeze::new(fixed_net(), 4, 3).unwrap(),
        "feature_squeeze",
    );
}

#[test]
fn magnet_shard_merge_matches_single_fit_bitwise() {
    assert_shard_law(|| Magnet::new(2, 1).unwrap(), "magnet");
}

#[test]
fn dla_shard_merge_matches_single_fit_bitwise() {
    assert_shard_law(|| Dla::new(fixed_net()).unwrap(), "dla");
}

#[test]
fn op_density_merge_wants_identical_densities() {
    let mut a = OpDensityDetector::new(gmm());
    let b = OpDensityDetector::new(gmm());
    a.fit(&dataset(1, 8)).unwrap();
    let before: Vec<u64> = queries()
        .iter()
        .map(|q| a.score(q).unwrap().to_bits())
        .collect();
    a.merge(&b).unwrap();
    let after: Vec<u64> = queries()
        .iter()
        .map(|q| a.score(q).unwrap().to_bits())
        .collect();
    assert_eq!(
        before, after,
        "merging an identical density must be a no-op"
    );

    let other = OpDensityDetector::new(
        Gmm::from_components(vec![GmmComponent {
            weight: 1.0,
            mean: vec![1.0, 1.0],
            std: 2.0,
        }])
        .unwrap(),
    );
    assert!(
        a.merge(&other).is_err(),
        "different densities must not merge"
    );
}

#[test]
fn repeated_fit_appends_exactly_like_one_fit() {
    // fit(A); fit(B) must equal fit(A ∪ B) bit-for-bit — the accumulation
    // face of the same canonical-row-order contract the shard law pins.
    let (a, b) = (dataset(2, 20), dataset(3, 28));
    let mut rows = a.features().as_slice().to_vec();
    rows.extend_from_slice(b.features().as_slice());
    let mut lab = a.labels().to_vec();
    lab.extend_from_slice(b.labels());
    let union = Dataset::new(Tensor::from_vec(rows, &[48, 2]).unwrap(), lab, 3).unwrap();

    let mut twice = Magnet::new(2, 1).unwrap();
    twice.fit(&a).unwrap();
    twice.fit(&b).unwrap();
    let mut once = Magnet::new(2, 1).unwrap();
    once.fit(&union).unwrap();
    assert_eq!(twice.reference_len(), 48);
    for q in queries() {
        assert_eq!(
            twice.score(&q).unwrap().to_bits(),
            once.score(&q).unwrap().to_bits(),
            "incremental fit diverged from union fit at {q:?}"
        );
    }
}

fn assert_merge_identity<D: Detector>(make: impl Fn() -> D, name: &str) {
    let ds = dataset(4, N);
    let mut det = make();
    det.fit(&ds).unwrap();
    let before: Vec<u64> = queries()
        .iter()
        .map(|q| det.score(q).unwrap().to_bits())
        .collect();
    det.merge(&make()).unwrap();
    let after: Vec<u64> = queries()
        .iter()
        .map(|q| det.score(q).unwrap().to_bits())
        .collect();
    assert_eq!(before, after, "{name}: right identity broken");

    // Left identity: folding a fitted shard into a fresh detector.
    let mut fresh = make();
    let mut fitted = make();
    fitted.fit(&ds).unwrap();
    fresh.merge(&fitted).unwrap();
    let via_fresh: Vec<u64> = queries()
        .iter()
        .map(|q| fresh.score(q).unwrap().to_bits())
        .collect();
    assert_eq!(before, via_fresh, "{name}: left identity broken");
}

#[test]
fn merging_an_unfitted_detector_is_the_identity() {
    assert_merge_identity(|| Lid::new(fixed_net(), 5).unwrap(), "lid");
    assert_merge_identity(
        || FeatureSqueeze::new(fixed_net(), 4, 3).unwrap(),
        "feature_squeeze",
    );
    assert_merge_identity(|| Magnet::new(2, 1).unwrap(), "magnet");
    assert_merge_identity(|| Dla::new(fixed_net()).unwrap(), "dla");
}

#[test]
fn squeeze_merge_commutes_and_all_merges_associate() {
    // FeatureSqueeze's fitted state is an elementwise min/max lattice join:
    // the one merge in the zoo that is fully order-free.
    let (da, db) = (dataset(5, 16), dataset(6, 16));
    let fit_on = |ds: &Dataset| {
        let mut s = FeatureSqueeze::new(fixed_net(), 4, 3).unwrap();
        s.fit(ds).unwrap();
        s
    };
    let mut ab = fit_on(&da);
    ab.merge(&fit_on(&db)).unwrap();
    let mut ba = fit_on(&db);
    ba.merge(&fit_on(&da)).unwrap();
    for q in queries() {
        assert_eq!(
            ab.score(&q).unwrap().to_bits(),
            ba.score(&q).unwrap().to_bits(),
            "squeeze merge must commute"
        );
    }

    // Ordered-concatenation merges associate exactly: (A·B)·C and A·(B·C)
    // build the same canonical row order.
    let dc = dataset(7, 16);
    let parts = |ds: &Dataset| {
        let mut m = Magnet::new(2, 1).unwrap();
        m.fit(ds).unwrap();
        m
    };
    let mut left = parts(&da);
    left.merge(&parts(&db)).unwrap();
    left.merge(&parts(&dc)).unwrap();
    let mut bc = parts(&db);
    bc.merge(&parts(&dc)).unwrap();
    let mut right = parts(&da);
    right.merge(&bc).unwrap();
    for q in queries() {
        assert_eq!(
            left.score(&q).unwrap().to_bits(),
            right.score(&q).unwrap().to_bits(),
            "magnet merge must associate"
        );
    }
}

fn assert_thread_invariance<D: Detector + Sync>(make: impl Fn() -> D, name: &str) {
    let ds = dataset(8, N);
    let probe = cloud(9, 24);
    let mut det = make();
    det.fit(&ds).unwrap();
    let bits = |threads: usize| -> Vec<u64> {
        let _pin = opad_par::override_threads(threads);
        score_batch(&det, &probe)
            .unwrap()
            .iter()
            .map(|s| s.to_bits())
            .collect()
    };
    let baseline = bits(1);
    for threads in [2usize, 4, 8] {
        assert_eq!(
            baseline,
            bits(threads),
            "{name}: scores moved at {threads} threads"
        );
    }
    // Scoring is a pure function: a repeated call reproduces the bits.
    assert_eq!(baseline, bits(1), "{name}: repeated scoring diverged");
}

#[test]
fn scores_are_deterministic_across_thread_counts() {
    assert_thread_invariance(|| Lid::new(fixed_net(), 5).unwrap(), "lid");
    assert_thread_invariance(
        || FeatureSqueeze::new(fixed_net(), 4, 3).unwrap(),
        "feature_squeeze",
    );
    assert_thread_invariance(|| Magnet::new(2, 1).unwrap(), "magnet");
    assert_thread_invariance(|| Dla::new(fixed_net()).unwrap(), "dla");
    assert_thread_invariance(|| OpDensityDetector::new(gmm()), "op_density");
}

fn assert_monotone<D: Detector + Sync>(make: impl Fn() -> D, name: &str) {
    // Monotonicity: push every clean point off the manifold along the
    // direction orthogonal to the data line and the mean suspicion score
    // must rise.
    let ds = dataset(10, N);
    let clean = ds.features().clone();
    let adv = Tensor::from_fn(&[N, 2], |ix| {
        let v = clean.as_slice()[ix[0] * 2 + ix[1]];
        // (0.5, 1.0) ⟂ (1.0, -0.5): leaves the line, stays finite.
        v + if ix[1] == 0 { 0.5 * 6.0 } else { 1.0 * 6.0 }
    });
    let mut det = make();
    det.fit(&ds).unwrap();
    let mean = |t: &Tensor| -> f64 {
        let s = score_batch(&det, t).unwrap();
        assert!(s.iter().all(|v| v.is_finite()), "{name}: non-finite score");
        s.iter().sum::<f64>() / s.len() as f64
    };
    let (mc, ma) = (mean(&clean), mean(&adv));
    assert!(
        ma > mc,
        "{name}: perturbed mean score {ma} not above clean mean {mc}"
    );
}

#[test]
fn perturbed_inputs_outscore_the_clean_manifold() {
    assert_monotone(|| Lid::new(fixed_net(), 5).unwrap(), "lid");
    assert_monotone(
        || FeatureSqueeze::new(fixed_net(), 4, 3).unwrap(),
        "feature_squeeze",
    );
    assert_monotone(|| Magnet::new(2, 1).unwrap(), "magnet");
    assert_monotone(|| Dla::new(fixed_net()).unwrap(), "dla");
    assert_monotone(|| OpDensityDetector::new(gmm()), "op_density");
}
