//! Merge laws for the OP-estimator sufficient statistics: cell-occupancy
//! histograms (integer counts — bit-exact laws), and the weighted-moment
//! merges of the KDE and GMM density estimators (mixture identities —
//! exact up to floating point, asserted at 1e-12).
//!
//! Generators are deterministic closed forms; no RNG crate is involved,
//! so the laws hold identically on every platform and thread count.

use opad_opmodel::{CellOccupancy, CentroidPartition, Density, Gmm, GmmComponent, Kde, Partition};
use opad_tensor::Tensor;

/// A deterministic [n, 2] point cloud spread across the partition below.
fn cloud(seed: u64, n: usize) -> Tensor {
    Tensor::from_fn(&[n, 2], |ix| {
        let t = (ix[0] as u64).wrapping_mul(2654435761).wrapping_add(seed) % 997;
        let v = t as f32 / 997.0 * 8.0 - 4.0;
        if ix[1] == 0 {
            v
        } else {
            -v * 0.5
        }
    })
}

fn partition() -> CentroidPartition {
    CentroidPartition::from_centroids(
        Tensor::from_vec(vec![-3.0, 1.5, -1.0, 0.5, 1.0, -0.5, 3.0, -1.5], &[4, 2]).unwrap(),
    )
    .unwrap()
}

fn occupancy_of(data: &Tensor) -> CellOccupancy {
    let mut occ = CellOccupancy::new(4).unwrap();
    occ.accumulate(&partition(), data).unwrap();
    occ
}

#[test]
fn occupancy_identity_element() {
    let identity = CellOccupancy::new(4).unwrap();
    let mut occ = occupancy_of(&cloud(1, 60));
    let before = occ.clone();
    occ.merge(&identity).unwrap();
    assert_eq!(occ, before);
    let mut left = identity;
    left.merge(&before).unwrap();
    assert_eq!(left, before);
}

#[test]
fn occupancy_commutes_and_associates() {
    let parts = [
        occupancy_of(&cloud(2, 40)),
        occupancy_of(&cloud(3, 50)),
        occupancy_of(&cloud(4, 30)),
    ];
    let mut ab = parts[0].clone();
    ab.merge(&parts[1]).unwrap();
    let mut ba = parts[1].clone();
    ba.merge(&parts[0]).unwrap();
    assert_eq!(ab, ba);

    let mut left = ab;
    left.merge(&parts[2]).unwrap();
    let mut bc = parts[1].clone();
    bc.merge(&parts[2]).unwrap();
    let mut right = parts[0].clone();
    right.merge(&bc).unwrap();
    assert_eq!(left, right);
}

#[test]
fn occupancy_fold_matches_single_pass_bitwise() {
    // The sharding contract: counting disjoint row ranges independently
    // and folding gives the same distribution bits as one pass, and both
    // match Partition::cell_distribution.
    let part = partition();
    let data = cloud(5, 120);
    let whole = occupancy_of(&data);
    for shards in [1usize, 2, 4, 8] {
        let chunk = 120usize.div_ceil(shards);
        let mut merged = CellOccupancy::new(4).unwrap();
        for s in 0..shards {
            let lo = (s * chunk).min(120);
            let hi = ((s + 1) * chunk).min(120);
            let rows: Vec<f32> = data.as_slice()[lo * 2..hi * 2].to_vec();
            if rows.is_empty() {
                continue;
            }
            let slice = Tensor::from_vec(rows, &[hi - lo, 2]).unwrap();
            let mut partial = CellOccupancy::new(4).unwrap();
            partial.accumulate(&part, &slice).unwrap();
            merged.merge(&partial).unwrap();
        }
        assert_eq!(merged, whole, "fold over {shards} shards");
    }
    assert_eq!(whole.total(), 120);
    let via_trait = part.cell_distribution(&data, 0.5).unwrap();
    let via_counts = whole.distribution(0.5);
    let same_bits = via_trait
        .iter()
        .zip(&via_counts)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(same_bits, "occupancy distribution diverged from the trait");
}

#[test]
fn occupancy_validation() {
    assert!(CellOccupancy::new(0).is_err());
    let mut occ = CellOccupancy::new(3).unwrap();
    assert!(occ.merge(&CellOccupancy::new(4).unwrap()).is_err());
    assert!(occ.accumulate(&partition(), &cloud(0, 5)).is_err());
}

// ---- KDE weighted merge ----

#[test]
fn kde_merge_equals_fit_on_union() {
    let (a_data, b_data) = (cloud(6, 25), cloud(7, 35));
    let a = Kde::fit(&a_data, 0.4).unwrap();
    let b = Kde::fit(&b_data, 0.4).unwrap();
    let merged = a.merge(&b).unwrap();
    let mut rows = a_data.as_slice().to_vec();
    rows.extend_from_slice(b_data.as_slice());
    let union = Kde::fit(&Tensor::from_vec(rows, &[60, 2]).unwrap(), 0.4).unwrap();
    assert_eq!(merged, union, "merged KDE must be the union fit, exactly");
    assert_eq!(merged.num_points(), 60);
}

#[test]
fn kde_merge_is_count_weighted_mixture() {
    let a = Kde::fit(&cloud(8, 10), 0.5).unwrap();
    let b = Kde::fit(&cloud(9, 30), 0.5).unwrap();
    let merged = a.merge(&b).unwrap();
    for x in [[-1.0f32, 0.5], [0.0, 0.0], [2.0, -1.0]] {
        let pa = a.log_density(&x).unwrap().exp();
        let pb = b.log_density(&x).unwrap().exp();
        let pm = merged.log_density(&x).unwrap().exp();
        let expect = (10.0 * pa + 30.0 * pb) / 40.0;
        assert!((pm - expect).abs() < 1e-12, "at {x:?}: {pm} vs {expect}");
    }
}

#[test]
fn kde_merge_associates_up_to_ordering() {
    let parts = [
        Kde::fit(&cloud(10, 12), 0.3).unwrap(),
        Kde::fit(&cloud(11, 18), 0.3).unwrap(),
        Kde::fit(&cloud(12, 9), 0.3).unwrap(),
    ];
    let left = parts[0].merge(&parts[1]).unwrap().merge(&parts[2]).unwrap();
    let right = parts[0].merge(&parts[1].merge(&parts[2]).unwrap()).unwrap();
    // Same point order either way (ordered concatenation), so bit-equal.
    assert_eq!(left, right);
    // Commuted order reorders reference points — a different struct but
    // the same density (sum over kernels is order-free up to fp).
    let swapped = parts[1].merge(&parts[0]).unwrap();
    let forward = parts[0].merge(&parts[1]).unwrap();
    let x = [0.3f32, -0.7];
    assert!((swapped.log_density(&x).unwrap() - forward.log_density(&x).unwrap()).abs() < 1e-12);
}

#[test]
fn kde_merge_validation() {
    let a = Kde::fit(&cloud(13, 5), 0.3).unwrap();
    let b = Kde::fit(&cloud(14, 5), 0.4).unwrap();
    assert!(a.merge(&b).is_err(), "bandwidth mismatch must be rejected");
    let one_d = Kde::fit(&Tensor::from_vec(vec![0.0, 1.0], &[2, 1]).unwrap(), 0.3).unwrap();
    assert!(a.merge(&one_d).is_err(), "dim mismatch must be rejected");
}

// ---- GMM weighted-moment merge ----

fn gmm(weight_split: f64, m0: f32, m1: f32) -> Gmm {
    Gmm::from_components(vec![
        GmmComponent {
            weight: weight_split,
            mean: vec![m0, 0.0],
            std: 0.8,
        },
        GmmComponent {
            weight: 1.0 - weight_split,
            mean: vec![m1, 1.0],
            std: 1.2,
        },
    ])
    .unwrap()
}

#[test]
fn gmm_merge_is_count_weighted_mixture() {
    let a = gmm(0.3, -2.0, 0.0);
    let b = gmm(0.7, 1.0, 3.0);
    let merged = a.merge_weighted(&b, 100, 300).unwrap();
    assert_eq!(merged.num_components(), 4);
    for x in [[-2.0f32, 0.0], [0.5, 0.5], [3.0, 1.0]] {
        let pm = merged.log_density(&x).unwrap().exp();
        let expect =
            0.25 * a.log_density(&x).unwrap().exp() + 0.75 * b.log_density(&x).unwrap().exp();
        assert!((pm - expect).abs() < 1e-12, "at {x:?}: {pm} vs {expect}");
    }
}

#[test]
fn gmm_merge_identity_behavior() {
    // Zero sample weight on one side leaves the other side's density
    // untouched: the zero-weight components contribute nothing.
    let a = gmm(0.5, -1.0, 1.0);
    let b = gmm(0.2, 4.0, -4.0);
    let merged = a.merge_weighted(&b, 50, 0).unwrap();
    for x in [[0.0f32, 0.0], [1.5, -0.5]] {
        let d = (merged.log_density(&x).unwrap() - a.log_density(&x).unwrap()).abs();
        assert!(d < 1e-12, "zero-weight merge shifted density by {d}");
    }
    assert!(a.merge_weighted(&b, 0, 0).is_err());
}

#[test]
fn gmm_merge_commutes_and_associates_as_density() {
    let parts = [gmm(0.4, -2.0, 2.0), gmm(0.6, 0.0, 1.0), gmm(0.5, -1.0, 3.0)];
    let counts = [60u64, 25, 15];
    let left = parts[0]
        .merge_weighted(&parts[1], counts[0], counts[1])
        .unwrap()
        .merge_weighted(&parts[2], counts[0] + counts[1], counts[2])
        .unwrap();
    let right = parts[0]
        .merge_weighted(
            &parts[1]
                .merge_weighted(&parts[2], counts[1], counts[2])
                .unwrap(),
            counts[0],
            counts[1] + counts[2],
        )
        .unwrap();
    let swapped = parts[1]
        .merge_weighted(&parts[0], counts[1], counts[0])
        .unwrap();
    for x in [[-1.0f32, 0.2], [0.7, 1.1]] {
        let l = left.log_density(&x).unwrap().exp();
        let r = right.log_density(&x).unwrap().exp();
        assert!((l - r).abs() < 1e-12, "associativity at {x:?}: {l} vs {r}");
        let ab = parts[0]
            .merge_weighted(&parts[1], counts[0], counts[1])
            .unwrap()
            .log_density(&x)
            .unwrap()
            .exp();
        let ba = swapped.log_density(&x).unwrap().exp();
        assert!((ab - ba).abs() < 1e-12, "commutativity at {x:?}");
    }
}

#[test]
fn gmm_merge_preserves_pooled_moments() {
    // Single-component parts: the pooled mean must be the count-weighted
    // mean of the parts — the defining weighted-moment property.
    let a = Gmm::from_components(vec![GmmComponent {
        weight: 1.0,
        mean: vec![-2.0, 0.0],
        std: 1.0,
    }])
    .unwrap();
    let b = Gmm::from_components(vec![GmmComponent {
        weight: 1.0,
        mean: vec![4.0, 2.0],
        std: 1.0,
    }])
    .unwrap();
    let merged = a.merge_weighted(&b, 300, 100).unwrap();
    let mut mean = [0.0f64; 2];
    for c in merged.components() {
        for (j, m) in mean.iter_mut().enumerate() {
            *m += c.weight * c.mean[j] as f64;
        }
    }
    assert!((mean[0] - (0.75 * -2.0 + 0.25 * 4.0)).abs() < 1e-12);
    assert!((mean[1] - (0.75 * 0.0 + 0.25 * 2.0)).abs() < 1e-12);
}

#[test]
fn gmm_merge_validation() {
    let a = gmm(0.5, -1.0, 1.0);
    let one_d = Gmm::from_components(vec![GmmComponent {
        weight: 1.0,
        mean: vec![0.0],
        std: 1.0,
    }])
    .unwrap();
    assert!(a.merge_weighted(&one_d, 1, 1).is_err());
}
