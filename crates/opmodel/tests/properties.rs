//! Property-based tests for operational-profile models.

use opad_opmodel::{
    js_divergence, kl_divergence, tv_distance, CentroidPartition, Density, Gmm, GmmComponent,
    GridPartition, Kde, LinearDrift, Partition,
};
use opad_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a normalised distribution of length `k`.
fn distribution(k: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..1.0, k).prop_map(|v| {
        let z: f64 = v.iter().sum();
        v.into_iter().map(|p| p / z).collect()
    })
}

fn gmm_2d(seed: u64) -> Gmm {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = Tensor::rand_normal(&[60, 2], 0.0, 2.0, &mut rng);
    Gmm::fit(&data, 3, 5, &mut rng).unwrap()
}

proptest! {
    #[test]
    fn divergences_are_nonnegative_and_bounded(p in distribution(5), q in distribution(5)) {
        let kl = kl_divergence(&p, &q).unwrap();
        prop_assert!(kl >= -1e-12);
        let js = js_divergence(&p, &q).unwrap();
        prop_assert!((-1e-12..=2.0f64.ln() + 1e-12).contains(&js));
        let tv = tv_distance(&p, &q).unwrap();
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&tv));
        // Symmetry of JS and TV.
        prop_assert!((js - js_divergence(&q, &p).unwrap()).abs() < 1e-12);
        prop_assert!((tv - tv_distance(&q, &p).unwrap()).abs() < 1e-12);
        // Self-divergence is zero.
        prop_assert!(kl_divergence(&p, &p).unwrap().abs() < 1e-12);
    }

    #[test]
    fn pinsker_inequality(p in distribution(4), q in distribution(4)) {
        // TV² ≤ KL/2 — a nontrivial relation the implementations must obey.
        let kl = kl_divergence(&p, &q).unwrap();
        let tv = tv_distance(&p, &q).unwrap();
        prop_assert!(tv * tv <= kl / 2.0 + 1e-9, "tv {tv}, kl {kl}");
    }

    #[test]
    fn gmm_density_finite_and_score_consistent(
        x in proptest::collection::vec(-10.0f32..10.0, 2),
        seed in 0u64..50,
    ) {
        let g = gmm_2d(seed);
        let ld = g.log_density(&x).unwrap();
        prop_assert!(ld.is_finite());
        // Score matches finite differences.
        let grad = g.grad_log_density(&x).unwrap();
        let h = 1e-2f32;
        for j in 0..2 {
            let mut xp = x.clone();
            xp[j] += h;
            let mut xm = x.clone();
            xm[j] -= h;
            let num = ((g.log_density(&xp).unwrap() - g.log_density(&xm).unwrap())
                / (2.0 * h as f64)) as f32;
            prop_assert!((num - grad[j]).abs() < 0.3 + 0.05 * grad[j].abs(),
                "dim {j}: numeric {num} vs analytic {}", grad[j]);
        }
    }

    #[test]
    fn gmm_samples_have_finite_density(seed in 0u64..50) {
        let g = gmm_2d(seed);
        let mut rng = StdRng::seed_from_u64(seed + 999);
        for _ in 0..20 {
            let x = g.sample(&mut rng).unwrap();
            prop_assert!(g.log_density(&x).unwrap().is_finite());
        }
    }

    #[test]
    fn kde_density_below_kernel_peak(
        bandwidth in 0.1f64..2.0,
        data in proptest::collection::vec(-5.0f32..5.0, 10),
    ) {
        let pts = Tensor::from_vec(data.clone(), &[10, 1]).unwrap();
        let kde = Kde::fit(&pts, bandwidth).unwrap();
        // A 1-D KDE's density can never exceed the single-kernel peak
        // 1/(√(2π)·h).
        let peak = 1.0 / ((2.0 * std::f64::consts::PI).sqrt() * bandwidth);
        for &x in &data {
            let d = kde.density(&[x]).unwrap();
            prop_assert!(d <= peak + 1e-9, "density {d} exceeds peak {peak}");
            prop_assert!(d > 0.0);
        }
    }

    #[test]
    fn centroid_partition_total_and_membership(
        data in proptest::collection::vec(-5.0f32..5.0, 40),
        k in 1usize..6,
        seed in 0u64..20,
    ) {
        let t = Tensor::from_vec(data, &[20, 2]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let part = CentroidPartition::fit(&t, k, 5, &mut rng).unwrap();
        prop_assert_eq!(part.num_cells(), k);
        let dist = part.cell_distribution(&t, 0.1).unwrap();
        prop_assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for i in 0..20 {
            let row = t.row(i).unwrap();
            let c = part.cell_of(row.as_slice()).unwrap();
            prop_assert!(c < k);
        }
    }

    #[test]
    fn grid_cells_partition_the_box(
        x in -2.0f32..2.0,
        y in -2.0f32..2.0,
        bins in 1usize..6,
    ) {
        let grid = GridPartition::new(vec![-2.0, -2.0], vec![2.0, 2.0], bins).unwrap();
        let c = grid.cell_of(&[x, y]).unwrap();
        prop_assert!(c < grid.num_cells());
    }

    #[test]
    fn drift_endpoints_and_interior(p in distribution(3), q in distribution(3), t in 0usize..20) {
        let drift = LinearDrift::new(p.clone(), q.clone(), 10).unwrap();
        let at = drift.probs_at(t);
        prop_assert!((at.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(at.iter().all(|&v| v >= -1e-12));
        // Interior values bounded by the endpoints coordinate-wise envelope.
        for i in 0..3 {
            let lo = p[i].min(q[i]) - 1e-12;
            let hi = p[i].max(q[i]) + 1e-12;
            prop_assert!(at[i] >= lo && at[i] <= hi);
        }
    }

    #[test]
    fn mixture_of_gmms_density_monotone_toward_mode(
        offset in 0.5f32..5.0,
    ) {
        let g = Gmm::from_components(vec![GmmComponent {
            weight: 1.0,
            mean: vec![0.0, 0.0],
            std: 1.0,
        }]).unwrap();
        let near = g.log_density(&[offset / 2.0, 0.0]).unwrap();
        let far = g.log_density(&[offset, 0.0]).unwrap();
        prop_assert!(near >= far);
    }
}
