//! Cell partitions of the input space.
//!
//! ReAsDL-style reliability assessment (RQ5) works on a *partition* of the
//! input domain into cells, with an OP probability and a failure-probability
//! estimate per cell. In low dimensions a regular grid works; in general we
//! use a k-means (Lloyd) centroid partition, which follows the data
//! manifold at any dimensionality.

use crate::OpModelError;
use opad_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A partition of the input space into finitely many indexed cells.
pub trait Partition {
    /// Number of cells.
    fn num_cells(&self) -> usize;

    /// The cell containing `x`.
    ///
    /// # Errors
    ///
    /// Returns [`OpModelError::DimensionMismatch`] when `x` has the wrong
    /// length.
    fn cell_of(&self, x: &[f32]) -> Result<usize, OpModelError>;

    /// Empirical cell-occupancy distribution of a dataset (with Laplace
    /// smoothing `alpha`), i.e. the discretised operational profile.
    ///
    /// # Errors
    ///
    /// Propagates [`Partition::cell_of`] failures.
    fn cell_distribution(&self, data: &Tensor, alpha: f64) -> Result<Vec<f64>, OpModelError> {
        let k = self.num_cells();
        let (n, d) = (data.dims()[0], data.dims()[1]);
        let mut counts = vec![alpha; k];
        for i in 0..n {
            let c = self.cell_of(&data.as_slice()[i * d..(i + 1) * d])?;
            counts[c] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        Ok(counts.into_iter().map(|c| c / total).collect())
    }
}

/// Mergeable cell-occupancy counts — the sufficient statistic behind
/// [`Partition::cell_distribution`], split out so sharded campaigns can
/// histogram disjoint data slices independently and fold the partials.
///
/// The counts are integers, so merging is exact: any grouping of the data
/// into shards folds to the same counts, and the normalised distribution
/// is bit-identical to a single pass (Laplace smoothing and the division
/// happen once, at [`CellOccupancy::distribution`] time, never per shard).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellOccupancy {
    counts: Vec<u64>,
}

impl CellOccupancy {
    /// An empty occupancy over `k` cells — the merge identity.
    ///
    /// # Errors
    ///
    /// Fails when `k` is zero.
    pub fn new(k: usize) -> Result<Self, OpModelError> {
        if k == 0 {
            return Err(OpModelError::InvalidParameter {
                reason: "occupancy needs at least one cell".into(),
            });
        }
        Ok(CellOccupancy { counts: vec![0; k] })
    }

    /// Counts the rows of `data` into cells of `partition`.
    ///
    /// # Errors
    ///
    /// Propagates [`Partition::cell_of`] failures.
    pub fn accumulate<P: Partition>(
        &mut self,
        partition: &P,
        data: &Tensor,
    ) -> Result<(), OpModelError> {
        if partition.num_cells() != self.counts.len() {
            return Err(OpModelError::InvalidParameter {
                reason: format!(
                    "occupancy over {} cells fed a {}-cell partition",
                    self.counts.len(),
                    partition.num_cells()
                ),
            });
        }
        let (n, d) = (data.dims()[0], data.dims()[1]);
        let xs = data.as_slice();
        for i in 0..n {
            self.counts[partition.cell_of(&xs[i * d..(i + 1) * d])?] += 1;
        }
        Ok(())
    }

    /// Folds another occupancy's counts into this one.
    ///
    /// # Errors
    ///
    /// Fails on a cell-count mismatch.
    pub fn merge(&mut self, other: &CellOccupancy) -> Result<(), OpModelError> {
        if self.counts.len() != other.counts.len() {
            return Err(OpModelError::InvalidParameter {
                reason: format!(
                    "cannot merge occupancies over {} and {} cells",
                    self.counts.len(),
                    other.counts.len()
                ),
            });
        }
        for (acc, &add) in self.counts.iter_mut().zip(&other.counts) {
            *acc += add;
        }
        Ok(())
    }

    /// The raw per-cell counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total rows counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The Laplace-smoothed occupancy distribution, matching
    /// [`Partition::cell_distribution`] bit-for-bit for the same data.
    pub fn distribution(&self, alpha: f64) -> Vec<f64> {
        let smoothed: Vec<f64> = self.counts.iter().map(|&c| alpha + c as f64).collect();
        let total: f64 = smoothed.iter().sum();
        smoothed.into_iter().map(|c| c / total).collect()
    }
}

/// A k-means centroid (Voronoi) partition: each cell is the set of points
/// closest to one learned centroid.
///
/// # Examples
///
/// ```
/// use opad_opmodel::{CentroidPartition, Partition};
/// use opad_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let data = Tensor::from_vec(vec![-5.0, -5.0, -5.1, -4.9, 5.0, 5.0, 5.1, 4.9], &[4, 2])?;
/// let part = CentroidPartition::fit(&data, 2, 10, &mut rng)?;
/// // The two tight groups land in different cells.
/// assert_ne!(part.cell_of(&[-5.0, -5.0])?, part.cell_of(&[5.0, 5.0])?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CentroidPartition {
    centroids: Tensor, // [k, d]
}

impl CentroidPartition {
    /// Fits `k` centroids with Lloyd's algorithm.
    ///
    /// # Errors
    ///
    /// Fails when the data is not a matrix with at least `k` rows.
    pub fn fit(
        data: &Tensor,
        k: usize,
        iterations: usize,
        rng: &mut StdRng,
    ) -> Result<Self, OpModelError> {
        if data.rank() != 2 {
            return Err(OpModelError::CannotFit {
                reason: "data must be a [n, d] matrix".into(),
            });
        }
        let (n, d) = (data.dims()[0], data.dims()[1]);
        if k == 0 || n < k {
            return Err(OpModelError::CannotFit {
                reason: format!("need at least k={k} points, got {n}"),
            });
        }
        let xs = data.as_slice();
        // Init from k distinct random rows.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            idx.swap(i, j);
        }
        let mut centroids: Vec<f32> = Vec::with_capacity(k * d);
        for &i in &idx[..k] {
            centroids.extend_from_slice(&xs[i * d..(i + 1) * d]);
        }
        let mut assignment = vec![0usize; n];
        for _ in 0..iterations {
            // Assign.
            let mut changed = false;
            for i in 0..n {
                let x = &xs[i * d..(i + 1) * d];
                let best = nearest(x, &centroids, k, d);
                if assignment[i] != best {
                    assignment[i] = best;
                    changed = true;
                }
            }
            // Update.
            let mut sums = vec![0.0f64; k * d];
            let mut counts = vec![0usize; k];
            for i in 0..n {
                let c = assignment[i];
                counts[c] += 1;
                for j in 0..d {
                    sums[c * d + j] += xs[i * d + j] as f64;
                }
            }
            for c in 0..k {
                if counts[c] == 0 {
                    continue; // empty cell keeps its centroid
                }
                for j in 0..d {
                    centroids[c * d + j] = (sums[c * d + j] / counts[c] as f64) as f32;
                }
            }
            if !changed {
                break;
            }
        }
        Ok(CentroidPartition {
            centroids: Tensor::from_vec(centroids, &[k, d])?,
        })
    }

    /// Builds a partition from explicit centroids (for tests and known
    /// ground truth).
    ///
    /// # Errors
    ///
    /// Fails for a non-matrix or empty centroid set.
    pub fn from_centroids(centroids: Tensor) -> Result<Self, OpModelError> {
        if centroids.rank() != 2 || centroids.dims()[0] == 0 || centroids.dims()[1] == 0 {
            return Err(OpModelError::CannotFit {
                reason: "centroids must be a nonempty [k, d] matrix".into(),
            });
        }
        Ok(CentroidPartition { centroids })
    }

    /// The centroid matrix, `[k, d]`.
    pub fn centroids(&self) -> &Tensor {
        &self.centroids
    }

    /// Dimensionality of the partitioned space.
    pub fn dim(&self) -> usize {
        self.centroids.dims()[1]
    }

    /// Mean squared distance of data rows to their assigned centroid (the
    /// k-means objective; useful for convergence tests).
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch.
    pub fn inertia(&self, data: &Tensor) -> Result<f64, OpModelError> {
        let (n, d) = (data.dims()[0], data.dims()[1]);
        if d != self.dim() {
            return Err(OpModelError::DimensionMismatch {
                expected: self.dim(),
                actual: d,
            });
        }
        let xs = data.as_slice();
        let cs = self.centroids.as_slice();
        let k = self.num_cells();
        let mut acc = 0.0f64;
        for i in 0..n {
            let x = &xs[i * d..(i + 1) * d];
            let c = nearest(x, cs, k, d);
            acc += sq_dist(x, &cs[c * d..(c + 1) * d]);
        }
        Ok(acc / n.max(1) as f64)
    }
}

fn sq_dist(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum()
}

fn nearest(x: &[f32], centroids: &[f32], k: usize, d: usize) -> usize {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for c in 0..k {
        let dist = sq_dist(x, &centroids[c * d..(c + 1) * d]);
        if dist < best_d {
            best_d = dist;
            best = c;
        }
    }
    best
}

impl Partition for CentroidPartition {
    fn num_cells(&self) -> usize {
        self.centroids.dims()[0]
    }

    fn cell_of(&self, x: &[f32]) -> Result<usize, OpModelError> {
        let d = self.dim();
        if x.len() != d {
            return Err(OpModelError::DimensionMismatch {
                expected: d,
                actual: x.len(),
            });
        }
        Ok(nearest(x, self.centroids.as_slice(), self.num_cells(), d))
    }

    // Parallel override of the cell-occupancy count: each fixed 256-row
    // chunk of data produces an integer count vector, and the chunks are
    // merged in order. Integer partials make the merge exact, so the
    // result matches the serial default at every thread count (for counts
    // below 2^53, where f64 addition of unit increments is exact).
    fn cell_distribution(&self, data: &Tensor, alpha: f64) -> Result<Vec<f64>, OpModelError> {
        let k = self.num_cells();
        let (n, d) = (data.dims()[0], data.dims()[1]);
        let xs = data.as_slice();
        const CHUNK_ROWS: usize = 256;
        let partials = opad_par::par_ranges(n, CHUNK_ROWS, |_, rows| {
            let mut counts = vec![0u64; k];
            for i in rows {
                counts[self.cell_of(&xs[i * d..(i + 1) * d])?] += 1;
            }
            Ok::<Vec<u64>, OpModelError>(counts)
        });
        let mut counts = vec![alpha; k];
        for partial in partials {
            for (acc, add) in counts.iter_mut().zip(partial?) {
                *acc += add as f64;
            }
        }
        let total: f64 = counts.iter().sum();
        Ok(counts.into_iter().map(|c| c / total).collect())
    }
}

/// A regular grid partition over a bounded box (suited to low dimensions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridPartition {
    lo: Vec<f32>,
    hi: Vec<f32>,
    bins: usize,
}

impl GridPartition {
    /// Creates a grid of `bins` intervals per dimension over `[lo, hi]`.
    /// Out-of-box points clamp to the nearest edge cell.
    ///
    /// # Errors
    ///
    /// Fails on empty/mismatched bounds, zero bins, or inverted ranges.
    pub fn new(lo: Vec<f32>, hi: Vec<f32>, bins: usize) -> Result<Self, OpModelError> {
        if lo.is_empty() || lo.len() != hi.len() {
            return Err(OpModelError::InvalidParameter {
                reason: "bounds must be nonempty and matched".into(),
            });
        }
        if bins == 0 {
            return Err(OpModelError::InvalidParameter {
                reason: "bins must be nonzero".into(),
            });
        }
        if lo.iter().zip(&hi).any(|(&l, &h)| l >= h) {
            return Err(OpModelError::InvalidParameter {
                reason: "each lo must be strictly below hi".into(),
            });
        }
        Ok(GridPartition { lo, hi, bins })
    }

    /// Dimensionality of the partitioned space.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Bins per dimension.
    pub fn bins(&self) -> usize {
        self.bins
    }
}

impl Partition for GridPartition {
    fn num_cells(&self) -> usize {
        self.bins.pow(self.dim() as u32)
    }

    fn cell_of(&self, x: &[f32]) -> Result<usize, OpModelError> {
        if x.len() != self.dim() {
            return Err(OpModelError::DimensionMismatch {
                expected: self.dim(),
                actual: x.len(),
            });
        }
        let mut idx = 0usize;
        for (j, &xj) in x.iter().enumerate() {
            let t = (xj - self.lo[j]) / (self.hi[j] - self.lo[j]);
            let b = ((t * self.bins as f32) as i64).clamp(0, self.bins as i64 - 1) as usize;
            idx = idx * self.bins + b;
        }
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn kmeans_separates_two_blobs() {
        let mut r = rng();
        let mut rows = Vec::new();
        for i in 0..100 {
            let c = if i % 2 == 0 { -5.0 } else { 5.0 };
            rows.push(Tensor::rand_normal(&[2], c, 0.3, &mut r));
        }
        let data = Tensor::stack_rows(&rows).expect("rows share one width");
        let part = CentroidPartition::fit(&data, 2, 20, &mut r).expect("rows share one width");
        assert_eq!(part.num_cells(), 2);
        let a = part.cell_of(&[-5.0, -5.0]).expect("rows share one width");
        let b = part.cell_of(&[5.0, 5.0]).expect("rows share one width");
        assert_ne!(a, b);
        // Centroids close to ±5 diagonal means.
        let inertia = part
            .inertia(&data)
            .expect("at least k rows fit k centroids");
        assert!(inertia < 1.0, "inertia {inertia}");
    }

    #[test]
    fn kmeans_more_cells_less_inertia() {
        let mut r = rng();
        let data = Tensor::rand_uniform(&[300, 2], -1.0, 1.0, &mut r);
        let p2 =
            CentroidPartition::fit(&data, 2, 25, &mut r).expect("at least k rows fit k centroids");
        let p16 =
            CentroidPartition::fit(&data, 16, 25, &mut r).expect("at least k rows fit k centroids");
        assert!(
            p16.inertia(&data).expect("at least k rows fit k centroids")
                < p2.inertia(&data).expect("at least k rows fit k centroids")
        );
    }

    #[test]
    fn kmeans_validation() {
        let mut r = rng();
        assert!(CentroidPartition::fit(&Tensor::zeros(&[3]), 2, 5, &mut r).is_err());
        assert!(CentroidPartition::fit(&Tensor::zeros(&[3, 2]), 5, 5, &mut r).is_err());
        assert!(CentroidPartition::fit(&Tensor::zeros(&[3, 2]), 0, 5, &mut r).is_err());
    }

    #[test]
    fn from_centroids_and_dimension_checks() {
        let part = CentroidPartition::from_centroids(
            Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0], &[2, 2])
                .expect("element count matches the shape"),
        )
        .expect("element count matches the shape");
        assert_eq!(part.dim(), 2);
        assert!(part.cell_of(&[0.0]).is_err());
        assert_eq!(
            part.cell_of(&[0.1, 0.1])
                .expect("element count matches the shape"),
            0
        );
        assert_eq!(
            part.cell_of(&[0.9, 0.9])
                .expect("element count matches the shape"),
            1
        );
        assert!(CentroidPartition::from_centroids(Tensor::zeros(&[0, 2])).is_err());
        assert!(part.inertia(&Tensor::zeros(&[2, 3])).is_err());
    }

    #[test]
    fn cell_distribution_sums_to_one() {
        let mut r = rng();
        let data = Tensor::rand_uniform(&[200, 2], -1.0, 1.0, &mut r);
        let part =
            CentroidPartition::fit(&data, 8, 15, &mut r).expect("at least k rows fit k centroids");
        let dist = part
            .cell_distribution(&data, 0.5)
            .expect("at least k rows fit k centroids");
        assert_eq!(dist.len(), 8);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(dist.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn centroid_cell_distribution_is_bitwise_thread_count_invariant() {
        let mut r = rng();
        // 700 rows: two full 256-row chunks plus a ragged tail.
        let data = Tensor::rand_uniform(&[700, 2], -1.0, 1.0, &mut r);
        let part =
            CentroidPartition::fit(&data, 8, 10, &mut r).expect("at least k rows fit k centroids");
        // The trait's serial formula, written out by hand.
        let xs = data.as_slice();
        let mut counts = vec![0.25f64; 8];
        for i in 0..700 {
            counts[part
                .cell_of(&xs[i * 2..(i + 1) * 2])
                .expect("query dim matches the partition")] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        let want: Vec<f64> = counts.into_iter().map(|c| c / total).collect();
        for threads in [1usize, 2, 4, 8] {
            let _pin = opad_par::override_threads(threads);
            let got = part
                .cell_distribution(&data, 0.25)
                .expect("query dim matches the partition");
            let same_bits = want
                .iter()
                .zip(&got)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same_bits, "distribution differs at {threads} threads");
        }
    }

    #[test]
    fn grid_partition_basics() {
        let grid = GridPartition::new(vec![0.0, 0.0], vec![1.0, 1.0], 2)
            .expect("ordered bounds with nonzero cells are valid");
        assert_eq!(grid.num_cells(), 4);
        assert_eq!(grid.dim(), 2);
        assert_eq!(grid.bins(), 2);
        assert_eq!(
            grid.cell_of(&[0.1, 0.1])
                .expect("ordered bounds with nonzero cells are valid"),
            0
        );
        assert_eq!(
            grid.cell_of(&[0.1, 0.9])
                .expect("ordered bounds with nonzero cells are valid"),
            1
        );
        assert_eq!(
            grid.cell_of(&[0.9, 0.1])
                .expect("ordered bounds with nonzero cells are valid"),
            2
        );
        assert_eq!(
            grid.cell_of(&[0.9, 0.9])
                .expect("query dim matches the partition"),
            3
        );
        // Out-of-box clamps.
        assert_eq!(
            grid.cell_of(&[-5.0, -5.0])
                .expect("query dim matches the partition"),
            0
        );
        assert_eq!(
            grid.cell_of(&[5.0, 5.0])
                .expect("query dim matches the partition"),
            3
        );
        assert!(grid.cell_of(&[0.5]).is_err());
    }

    #[test]
    fn grid_validation() {
        assert!(GridPartition::new(vec![], vec![], 2).is_err());
        assert!(GridPartition::new(vec![0.0], vec![1.0, 2.0], 2).is_err());
        assert!(GridPartition::new(vec![0.0], vec![1.0], 0).is_err());
        assert!(GridPartition::new(vec![1.0], vec![0.0], 2).is_err());
    }

    #[test]
    fn grid_distribution_of_uniform_data_is_roughly_uniform() {
        let mut r = rng();
        let data = Tensor::rand_uniform(&[4000, 2], 0.0, 1.0, &mut r);
        let grid = GridPartition::new(vec![0.0, 0.0], vec![1.0, 1.0], 2)
            .expect("ordered bounds with nonzero cells are valid");
        let dist = grid
            .cell_distribution(&data, 0.0)
            .expect("ordered bounds with nonzero cells are valid");
        for &p in &dist {
            assert!((p - 0.25).abs() < 0.03, "cell prob {p}");
        }
    }

    #[test]
    fn kmeans_deterministic_given_seed() {
        let data = Tensor::from_fn(&[50, 2], |ix| ((ix[0] * 7 + ix[1] * 3) % 11) as f32);
        let mut a = StdRng::seed_from_u64(4);
        let mut b = StdRng::seed_from_u64(4);
        let pa =
            CentroidPartition::fit(&data, 4, 10, &mut a).expect("at least k rows fit k centroids");
        let pb =
            CentroidPartition::fit(&data, 4, 10, &mut b).expect("at least k rows fit k centroids");
        assert_eq!(pa, pb);
    }
}
