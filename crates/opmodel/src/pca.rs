//! From-scratch principal component analysis (power iteration with
//! deflation).
//!
//! PCA started life inside `opad-attack` as the reconstruction-error
//! naturalness proxy; it moved here so the detector zoo (MagNet-style
//! reconstruction detectors) and the attack-side oracle share one
//! implementation — the arithmetic is unchanged, so scores produced
//! through either face are bit-identical.

use crate::OpModelError;
use opad_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A fitted `k`-component PCA: the training mean and `k` orthonormal
/// principal directions, supporting reconstruction error and its analytic
/// gradient.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pca {
    mean: Vec<f32>,
    components: Tensor, // [k, d] orthonormal rows
}

impl Pca {
    /// Fits a `k`-component PCA on the rows of `data`.
    ///
    /// # Errors
    ///
    /// Fails when `data` is not a matrix with at least 2 rows, or `k` is
    /// zero or exceeds the dimensionality.
    pub fn fit(data: &Tensor, k: usize) -> Result<Self, OpModelError> {
        if data.rank() != 2 || data.dims()[0] < 2 {
            return Err(OpModelError::CannotFit {
                reason: "PCA needs a [n≥2, d] matrix".into(),
            });
        }
        let (n, d) = (data.dims()[0], data.dims()[1]);
        if k == 0 || k > d {
            return Err(OpModelError::InvalidParameter {
                reason: format!("k must be in 1..={d}, got {k}"),
            });
        }
        // Mean-centre.
        let mean_t = data.mean_axis(0)?;
        let mean: Vec<f32> = mean_t.as_slice().to_vec();
        // Covariance (d×d), fine for the dimensionalities in this toolkit.
        let mut cov = vec![0.0f64; d * d];
        let xs = data.as_slice();
        for i in 0..n {
            let row = &xs[i * d..(i + 1) * d];
            for a in 0..d {
                let va = (row[a] - mean[a]) as f64;
                for b in a..d {
                    let vb = (row[b] - mean[b]) as f64;
                    cov[a * d + b] += va * vb;
                }
            }
        }
        for a in 0..d {
            for b in a..d {
                let v = cov[a * d + b] / (n - 1) as f64;
                cov[a * d + b] = v;
                cov[b * d + a] = v;
            }
        }
        // Power iteration with deflation for the top-k eigenvectors.
        let mut components = Vec::with_capacity(k * d);
        let mut deflated = cov;
        for comp in 0..k {
            // Deterministic start (varies per component to avoid
            // pathological orthogonality).
            let mut v: Vec<f64> = (0..d)
                .map(|j| if j % (comp + 1) == 0 { 1.0 } else { 0.5 })
                .collect();
            normalize(&mut v);
            let mut eigval = 0.0f64;
            for _ in 0..200 {
                let mut w = vec![0.0f64; d];
                for a in 0..d {
                    let mut acc = 0.0;
                    for b in 0..d {
                        acc += deflated[a * d + b] * v[b];
                    }
                    w[a] = acc;
                }
                eigval = norm(&w);
                if eigval < 1e-12 {
                    break; // rank exhausted: keep current direction
                }
                for (vi, wi) in v.iter_mut().zip(&w) {
                    *vi = wi / eigval;
                }
            }
            // Deflate: C ← C − λ v vᵀ.
            for a in 0..d {
                for b in 0..d {
                    deflated[a * d + b] -= eigval * v[a] * v[b];
                }
            }
            components.extend(v.iter().map(|&x| x as f32));
        }
        Ok(Pca {
            mean,
            components: Tensor::from_vec(components, &[k, d])?,
        })
    }

    /// Number of principal components retained.
    pub fn num_components(&self) -> usize {
        self.components.dims()[0]
    }

    /// Dimensionality of the space the PCA was fitted on.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// The training mean.
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// The `[k, d]` matrix of orthonormal principal directions.
    pub fn components(&self) -> &Tensor {
        &self.components
    }

    fn check_dim(&self, x: &[f32]) -> Result<(), OpModelError> {
        if x.len() != self.dim() {
            return Err(OpModelError::DimensionMismatch {
                expected: self.dim(),
                actual: x.len(),
            });
        }
        Ok(())
    }

    /// Squared reconstruction error of `x` under the retained subspace.
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch.
    pub fn reconstruction_error(&self, x: &[f32]) -> Result<f64, OpModelError> {
        self.check_dim(x)?;
        let d = self.dim();
        let centered: Vec<f64> = x
            .iter()
            .zip(&self.mean)
            .map(|(&a, &m)| (a - m) as f64)
            .collect();
        let k = self.num_components();
        let comps = self.components.as_slice();
        // ‖c‖² − Σ (vᵀc)²  (Pythagoras in the orthonormal basis).
        let total: f64 = centered.iter().map(|v| v * v).sum();
        let mut explained = 0.0f64;
        for c in 0..k {
            let proj: f64 = comps[c * d..(c + 1) * d]
                .iter()
                .zip(&centered)
                .map(|(&v, &x)| v as f64 * x)
                .sum();
            explained += proj * proj;
        }
        Ok((total - explained).max(0.0))
    }

    /// Analytic gradient of the squared reconstruction error
    /// `‖(I − VVᵀ)(x − μ)‖²`: `2 (I − VVᵀ)(x − μ)`.
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch.
    pub fn reconstruction_error_gradient(&self, x: &[f32]) -> Result<Vec<f32>, OpModelError> {
        self.check_dim(x)?;
        let d = self.dim();
        let centered: Vec<f64> = x
            .iter()
            .zip(&self.mean)
            .map(|(&a, &m)| (a - m) as f64)
            .collect();
        let k = self.num_components();
        let comps = self.components.as_slice();
        // residual = c − V Vᵀ c
        let mut residual = centered.clone();
        for c in 0..k {
            let row = &comps[c * d..(c + 1) * d];
            let proj: f64 = row.iter().zip(&centered).map(|(&v, &x)| v as f64 * x).sum();
            for (r, &v) in residual.iter_mut().zip(row) {
                *r -= proj * v as f64;
            }
        }
        Ok(residual.into_iter().map(|r| (2.0 * r) as f32).collect())
    }
}

fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

fn normalize(v: &mut [f64]) {
    let n = norm(v);
    if n > 0.0 {
        for x in v {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic anisotropic cloud (no RNG): points on a noisy line.
    fn line_cloud(n: usize) -> Tensor {
        Tensor::from_fn(&[n, 2], |ix| {
            let t = ix[0] as f32 / 10.0 - 2.5;
            if ix[1] == 0 {
                t
            } else {
                2.0 * t
            }
        })
    }

    #[test]
    fn pca_reconstructs_on_manifold_points() {
        let pca = Pca::fit(&line_cloud(50), 1).unwrap();
        assert_eq!(pca.num_components(), 1);
        assert_eq!(pca.dim(), 2);
        let on = pca.reconstruction_error(&[1.0, 2.0]).unwrap();
        let off = pca.reconstruction_error(&[2.0, -1.0]).unwrap();
        assert!(on < 1e-6, "on-manifold error {on}");
        assert!(off > 1.0, "off-manifold error {off}");
    }

    #[test]
    fn pca_validation() {
        let data = Tensor::zeros(&[10, 3]);
        assert!(Pca::fit(&data, 0).is_err());
        assert!(Pca::fit(&data, 4).is_err());
        assert!(Pca::fit(&Tensor::zeros(&[1, 3]), 1).is_err());
        assert!(Pca::fit(&Tensor::zeros(&[5]), 1).is_err());
        let pca = Pca::fit(&data, 2).unwrap();
        assert!(pca.reconstruction_error(&[0.0]).is_err());
        assert!(pca.reconstruction_error_gradient(&[0.0]).is_err());
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let pca = Pca::fit(&line_cloud(60), 1).unwrap();
        let x = [0.3f32, -0.7];
        let analytic = pca.reconstruction_error_gradient(&x).unwrap();
        let h = 1e-3f32;
        for j in 0..2 {
            let mut xp = x;
            xp[j] += h;
            let mut xm = x;
            xm[j] -= h;
            let num = ((pca.reconstruction_error(&xp).unwrap()
                - pca.reconstruction_error(&xm).unwrap())
                / (2.0 * h as f64)) as f32;
            assert!(
                (num - analytic[j]).abs() < 1e-2,
                "dim {j}: {num} vs {}",
                analytic[j]
            );
        }
    }

    #[test]
    fn components_are_orthonormal() {
        // Anisotropic 3-D cloud with distinct eigenvalues, closed form.
        let data = Tensor::from_fn(&[200, 3], |ix| {
            let t = (ix[0] as u64).wrapping_mul(2654435761) % 997;
            let v = t as f32 / 997.0 * 2.0 - 1.0;
            match ix[1] {
                0 => 3.0 * v,
                1 => v + 0.1 * (ix[0] as f32 * 0.37).sin(),
                _ => 0.3 * (ix[0] as f32 * 1.13).cos(),
            }
        });
        let pca = Pca::fit(&data, 3).unwrap();
        let c = pca.components().as_slice();
        for a in 0..3 {
            for b in 0..3 {
                let dot: f32 = (0..3).map(|j| c[a * 3 + j] * c[b * 3 + j]).sum();
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-3, "⟨v{a}, v{b}⟩ = {dot}");
            }
        }
    }
}
