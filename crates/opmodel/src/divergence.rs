//! Divergences between discrete distributions — used to quantify the
//! train/OP mismatch and the quality of learned profiles.

use crate::OpModelError;

fn check_pair(p: &[f64], q: &[f64]) -> Result<(), OpModelError> {
    if p.is_empty() || p.len() != q.len() {
        return Err(OpModelError::InvalidDistribution {
            reason: format!("length mismatch: {} vs {}", p.len(), q.len()),
        });
    }
    for &v in p.iter().chain(q) {
        if v < 0.0 || !v.is_finite() {
            return Err(OpModelError::InvalidDistribution {
                reason: "entries must be finite and nonnegative".into(),
            });
        }
    }
    for (name, dist) in [("p", p), ("q", q)] {
        let s: f64 = dist.iter().sum();
        if (s - 1.0).abs() > 1e-6 {
            return Err(OpModelError::InvalidDistribution {
                reason: format!("{name} sums to {s}"),
            });
        }
    }
    Ok(())
}

/// Kullback–Leibler divergence `KL(p‖q)` in nats.
///
/// Zero-probability `q` cells with nonzero `p` make the divergence
/// infinite; both-zero cells contribute nothing.
///
/// # Errors
///
/// Fails when the inputs are not equal-length distributions.
///
/// # Examples
///
/// ```
/// use opad_opmodel::kl_divergence;
///
/// let kl = kl_divergence(&[0.5, 0.5], &[0.5, 0.5])?;
/// assert!(kl.abs() < 1e-12);
/// # Ok::<(), opad_opmodel::OpModelError>(())
/// ```
pub fn kl_divergence(p: &[f64], q: &[f64]) -> Result<f64, OpModelError> {
    check_pair(p, q)?;
    let mut acc = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi == 0.0 {
            continue;
        }
        if qi == 0.0 {
            return Ok(f64::INFINITY);
        }
        acc += pi * (pi / qi).ln();
    }
    Ok(acc)
}

/// Jensen–Shannon divergence (symmetric, bounded by `ln 2`).
///
/// # Errors
///
/// Fails when the inputs are not equal-length distributions.
pub fn js_divergence(p: &[f64], q: &[f64]) -> Result<f64, OpModelError> {
    check_pair(p, q)?;
    let m: Vec<f64> = p.iter().zip(q).map(|(&a, &b)| 0.5 * (a + b)).collect();
    Ok(0.5 * kl_divergence(p, &m)? + 0.5 * kl_divergence(q, &m)?)
}

/// Total-variation distance `½ Σ|pᵢ − qᵢ|` (in `[0, 1]`).
///
/// # Errors
///
/// Fails when the inputs are not equal-length distributions.
pub fn tv_distance(p: &[f64], q: &[f64]) -> Result<f64, OpModelError> {
    check_pair(p, q)?;
    Ok(0.5 * p.iter().zip(q).map(|(&a, &b)| (a - b).abs()).sum::<f64>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_zero_divergence() {
        let p = [0.2, 0.3, 0.5];
        assert!(
            kl_divergence(&p, &p)
                .expect("both distributions have the same support size")
                .abs()
                < 1e-12
        );
        assert!(
            js_divergence(&p, &p)
                .expect("both distributions have the same support size")
                .abs()
                < 1e-12
        );
        assert_eq!(
            tv_distance(&p, &p).expect("both distributions have the same support size"),
            0.0
        );
    }

    #[test]
    fn kl_known_value() {
        // KL([1,0] ‖ [0.5,0.5]) = ln 2.
        let kl = kl_divergence(&[1.0, 0.0], &[0.5, 0.5])
            .expect("both distributions have the same support size");
        assert!((kl - 2.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn kl_is_asymmetric_and_infinite_on_missing_support() {
        let p = [0.9, 0.1];
        let q = [0.1, 0.9];
        let ab = kl_divergence(&p, &q).expect("both distributions have the same support size");
        let ba = kl_divergence(&q, &p).expect("both distributions have the same support size");
        assert!((ab - ba).abs() < 1e-12 || ab != ba); // generally differ
        assert!(kl_divergence(&[0.5, 0.5], &[1.0, 0.0])
            .expect("both distributions have the same support size")
            .is_infinite());
        // Zero-p cells are fine.
        assert!(
            kl_divergence(&[1.0, 0.0], &[1.0, 0.0])
                .expect("both distributions have the same support size")
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn js_bounded_and_symmetric() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        let js = js_divergence(&p, &q).expect("both distributions have the same support size");
        assert!(
            (js - 2.0f64.ln()).abs() < 1e-12,
            "disjoint = ln 2, got {js}"
        );
        let a = js_divergence(&[0.7, 0.3], &[0.2, 0.8])
            .expect("both distributions have the same support size");
        let b = js_divergence(&[0.2, 0.8], &[0.7, 0.3])
            .expect("both distributions have the same support size");
        assert!((a - b).abs() < 1e-12);
        assert!(a > 0.0 && a < 2.0f64.ln());
    }

    #[test]
    fn tv_known_values() {
        assert_eq!(
            tv_distance(&[1.0, 0.0], &[0.0, 1.0])
                .expect("both distributions have the same support size"),
            1.0
        );
        let tv = tv_distance(&[0.6, 0.4], &[0.4, 0.6])
            .expect("both distributions have the same support size");
        assert!((tv - 0.2).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(kl_divergence(&[0.5, 0.5], &[1.0]).is_err());
        assert!(kl_divergence(&[], &[]).is_err());
        assert!(kl_divergence(&[0.5, 0.6], &[0.5, 0.5]).is_err());
        assert!(js_divergence(&[-0.5, 1.5], &[0.5, 0.5]).is_err());
        assert!(tv_distance(&[f64::NAN, 1.0], &[0.5, 0.5]).is_err());
    }

    #[test]
    fn skew_increases_divergence_monotonically() {
        // Useful sanity for E1: stronger Zipf skew = larger divergence from
        // uniform.
        let uniform = [0.25; 4];
        let mild = [0.4, 0.3, 0.2, 0.1];
        let strong = [0.7, 0.2, 0.07, 0.03];
        let d_mild =
            js_divergence(&uniform, &mild).expect("both distributions have the same support size");
        let d_strong = js_divergence(&uniform, &strong)
            .expect("both distributions have the same support size");
        assert!(d_strong > d_mild);
        assert!(
            tv_distance(&uniform, &strong).expect("both distributions have the same support size")
                > tv_distance(&uniform, &mild)
                    .expect("both distributions have the same support size")
        );
    }
}
