//! Micro-benchmark registry for the OP-model kernels (`obsctl bench`).

use crate::{log_density_batch, CentroidPartition, Density, Gmm, Kde, Partition};
use opad_data::{gaussian_clusters, uniform_probs, GaussianClustersConfig};
use opad_telemetry::{BenchKernel, Benchmarkable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// The crate's [`Benchmarkable`] registry: the density queries and cell
/// assignment every naturalness check and reliability observation pays.
pub struct OpModelBenches;

impl Benchmarkable for OpModelBenches {
    fn bench_kernels() -> Vec<BenchKernel> {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = GaussianClustersConfig::default();
        let data = gaussian_clusters(&cfg, 500, &uniform_probs(3), &mut rng)
            .expect("default cluster config synthesises");
        let kde = Kde::fit_scott(data.features()).expect("nonempty data fits a KDE");
        let kde_score = kde.clone();
        let gmm = Gmm::fit(data.features(), 3, 10, &mut rng).expect("500 points fit 3 components");
        let partition = CentroidPartition::fit(data.features(), 16, 20, &mut rng)
            .expect("500 points fit 16 cells");
        let q = [0.5f32, -0.5];
        // Serial-vs-parallel pair for the batch density evaluator: all 500
        // training points scored against the n=500 KDE (250k kernel
        // evaluations) with the pool pinned to 1 and 4 threads.
        let batch = data.features().clone();
        let kde_batch = kde.clone();
        let batch_at = |name: &'static str, threads: usize| {
            let (kde, batch) = (kde_batch.clone(), batch.clone());
            BenchKernel::new(name, move || {
                let _pin = opad_par::override_threads(threads);
                black_box(log_density_batch(&kde, &batch).expect("batch dim matches fit"));
            })
        };
        vec![
            batch_at("opmodel/kde_batch_n500_t1", 1),
            batch_at("opmodel/kde_batch_n500_t4", 4),
            BenchKernel::new("opmodel/kde_log_density_n500", move || {
                black_box(kde.log_density(&q).expect("query dim matches fit"));
            }),
            BenchKernel::new("opmodel/kde_score_n500", move || {
                black_box(
                    kde_score
                        .grad_log_density(&q)
                        .expect("query dim matches fit"),
                );
            }),
            BenchKernel::new("opmodel/gmm_log_density_k3", move || {
                black_box(gmm.log_density(&q).expect("query dim matches fit"));
            }),
            BenchKernel::new("opmodel/kmeans_assign_k16", move || {
                black_box(partition.cell_of(&q).expect("query dim matches fit"));
            }),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_and_every_kernel_runs() {
        let mut kernels = OpModelBenches::bench_kernels();
        assert!(kernels.len() >= 4);
        for k in &mut kernels {
            assert!(k.name.starts_with("opmodel/"), "{}", k.name);
            (k.run)();
        }
    }
}
