//! Gaussian kernel density estimation.

use crate::density::{log_sum_exp, Density};
use crate::OpModelError;
use opad_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::f64::consts::TAU;

/// A Gaussian kernel density estimate over a reference dataset.
///
/// `p(x) = (1/n) Σᵢ N(x; xᵢ, h²I)`. This is the toolkit's default
/// *naturalness* oracle: the paper falls back on "quantified naturalness as
/// an approximation to the local OP" (Sec. II-b), and density under a KDE
/// fitted to operational data is precisely that quantity.
///
/// # Examples
///
/// ```
/// use opad_opmodel::{Density, Kde};
/// use opad_tensor::Tensor;
///
/// let data = Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0], &[2, 2])?;
/// let kde = Kde::fit(&data, 0.5)?;
/// // Density near the data beats density far away.
/// assert!(kde.log_density(&[0.5, 0.5])? > kde.log_density(&[10.0, 10.0])?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kde {
    points: Tensor,
    bandwidth: f64,
}

impl Kde {
    /// Fits a KDE on the rows of `data` with the given bandwidth.
    ///
    /// # Errors
    ///
    /// Fails for a non-matrix, empty data, or a non-positive bandwidth.
    pub fn fit(data: &Tensor, bandwidth: f64) -> Result<Self, OpModelError> {
        if data.rank() != 2 || data.dims()[0] == 0 || data.dims()[1] == 0 {
            return Err(OpModelError::CannotFit {
                reason: "KDE needs a nonempty [n, d] matrix".into(),
            });
        }
        if bandwidth <= 0.0 || !bandwidth.is_finite() {
            return Err(OpModelError::InvalidParameter {
                reason: format!("bandwidth must be positive, got {bandwidth}"),
            });
        }
        Ok(Kde {
            points: data.clone(),
            bandwidth,
        })
    }

    /// Fits with Scott's rule-of-thumb bandwidth: `n^(−1/(d+4)) · σ̄`,
    /// where `σ̄` is the mean per-feature standard deviation.
    ///
    /// # Errors
    ///
    /// Same as [`Kde::fit`]; also fails when the data is constant.
    pub fn fit_scott(data: &Tensor) -> Result<Self, OpModelError> {
        if data.rank() != 2 || data.dims()[0] == 0 {
            return Err(OpModelError::CannotFit {
                reason: "KDE needs a nonempty [n, d] matrix".into(),
            });
        }
        let (n, d) = (data.dims()[0], data.dims()[1]);
        // Mean per-feature std.
        let mut acc = 0.0f64;
        for j in 0..d {
            let mut col = Vec::with_capacity(n);
            for i in 0..n {
                col.push(data.as_slice()[i * d + j]);
            }
            let t = Tensor::from_slice(&col);
            acc += t.std() as f64;
        }
        let sigma = acc / d as f64;
        let h = sigma * (n as f64).powf(-1.0 / (d as f64 + 4.0));
        Kde::fit(data, h.max(1e-6))
    }

    /// Merges two KDEs fitted on disjoint reference slices with the same
    /// bandwidth.
    ///
    /// The union estimate is exactly the point-count-weighted mixture of
    /// the parts, so stacking the reference rows (`self` first) reproduces
    /// a single [`Kde::fit`] over the concatenated data bit-for-bit.
    ///
    /// # Errors
    ///
    /// Fails on a dimension mismatch or differing bandwidths (a weighted
    /// bandwidth merge would change the estimator, not just reassemble its
    /// shards).
    pub fn merge(&self, other: &Kde) -> Result<Kde, OpModelError> {
        let d = self.points.dims()[1];
        if other.points.dims()[1] != d {
            return Err(OpModelError::DimensionMismatch {
                expected: d,
                actual: other.points.dims()[1],
            });
        }
        if self.bandwidth.to_bits() != other.bandwidth.to_bits() {
            return Err(OpModelError::InvalidParameter {
                reason: format!(
                    "cannot merge KDEs with bandwidths {} and {}",
                    self.bandwidth, other.bandwidth
                ),
            });
        }
        let (na, nb) = (self.points.dims()[0], other.points.dims()[0]);
        let mut rows = Vec::with_capacity((na + nb) * d);
        rows.extend_from_slice(self.points.as_slice());
        rows.extend_from_slice(other.points.as_slice());
        Ok(Kde {
            points: Tensor::from_vec(rows, &[na + nb, d])?,
            bandwidth: self.bandwidth,
        })
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of reference points.
    pub fn num_points(&self) -> usize {
        self.points.dims()[0]
    }
}

impl Density for Kde {
    fn dim(&self) -> usize {
        self.points.dims()[1]
    }

    fn log_density(&self, x: &[f32]) -> Result<f64, OpModelError> {
        let (n, d) = (self.points.dims()[0], self.points.dims()[1]);
        if x.len() != d {
            return Err(OpModelError::DimensionMismatch {
                expected: d,
                actual: x.len(),
            });
        }
        let h2 = self.bandwidth * self.bandwidth;
        let norm = -0.5 * d as f64 * (TAU * h2).ln();
        let pts = self.points.as_slice();
        let mut logs = Vec::with_capacity(n);
        for i in 0..n {
            let mut sq = 0.0f64;
            for (j, &xj) in x.iter().enumerate() {
                let diff = xj as f64 - pts[i * d + j] as f64;
                sq += diff * diff;
            }
            logs.push(norm - sq / (2.0 * h2));
        }
        Ok(log_sum_exp(&logs) - (n as f64).ln())
    }

    /// Analytic score of the kernel mixture:
    /// `∇ log p(x) = Σᵢ rᵢ(x) (xᵢ − x)/h²`.
    fn grad_log_density(&self, x: &[f32]) -> Result<Vec<f32>, OpModelError> {
        let (n, d) = (self.points.dims()[0], self.points.dims()[1]);
        if x.len() != d {
            return Err(OpModelError::DimensionMismatch {
                expected: d,
                actual: x.len(),
            });
        }
        let h2 = self.bandwidth * self.bandwidth;
        let pts = self.points.as_slice();
        let mut logs = Vec::with_capacity(n);
        for i in 0..n {
            let mut sq = 0.0f64;
            for (j, &xj) in x.iter().enumerate() {
                let diff = xj as f64 - pts[i * d..][j] as f64;
                sq += diff * diff;
            }
            logs.push(-sq / (2.0 * h2));
        }
        let lse = log_sum_exp(&logs);
        let mut grad = vec![0.0f32; d];
        for (i, &l) in logs.iter().enumerate() {
            let r = (l - lse).exp();
            for (j, g) in grad.iter_mut().enumerate() {
                *g += (r * (pts[i * d + j] as f64 - x[j] as f64) / h2) as f32;
            }
        }
        Ok(grad)
    }

    fn sample(&self, rng: &mut StdRng) -> Result<Vec<f32>, OpModelError> {
        let (n, d) = (self.points.dims()[0], self.points.dims()[1]);
        let i = rng.gen_range(0..n);
        let noise = Tensor::rand_normal(&[d], 0.0, self.bandwidth as f32, rng);
        Ok(self.points.as_slice()[i * d..(i + 1) * d]
            .iter()
            .zip(noise.as_slice())
            .map(|(&p, &e)| p + e)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fit_validation() {
        let data = Tensor::zeros(&[3, 2]);
        assert!(Kde::fit(&data, 0.0).is_err());
        assert!(Kde::fit(&data, -1.0).is_err());
        assert!(Kde::fit(&Tensor::zeros(&[3]), 1.0).is_err());
        assert!(Kde::fit(&Tensor::zeros(&[0, 2]), 1.0).is_err());
        let kde = Kde::fit(&data, 0.5).expect("nonempty data and a positive bandwidth fit a KDE");
        assert_eq!(kde.num_points(), 3);
        assert_eq!(kde.dim(), 2);
        assert_eq!(kde.bandwidth(), 0.5);
    }

    #[test]
    fn single_point_kde_is_a_gaussian() {
        let data =
            Tensor::from_vec(vec![0.0, 0.0], &[1, 2]).expect("element count matches the shape");
        let kde = Kde::fit(&data, 1.0).expect("element count matches the shape");
        let lp = kde
            .log_density(&[0.0, 0.0])
            .expect("query dim matches the density");
        assert!((lp + TAU.ln()).abs() < 1e-9);
    }

    #[test]
    fn density_peaks_at_data() {
        let data =
            Tensor::from_vec(vec![-2.0, 2.0], &[2, 1]).expect("query dim matches the density");
        let kde = Kde::fit(&data, 0.3).expect("element count matches the shape");
        let near = kde
            .log_density(&[-2.0])
            .expect("query dim matches the density");
        let far = kde
            .log_density(&[0.0])
            .expect("query dim matches the density");
        assert!(near > far);
        assert!(kde.log_density(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn mixture_symmetry() {
        let data =
            Tensor::from_vec(vec![-1.0, 1.0], &[2, 1]).expect("query dim matches the density");
        let kde = Kde::fit(&data, 0.5).expect("query dim matches the density");
        let a = kde
            .log_density(&[-1.0])
            .expect("query dim matches the density");
        let b = kde
            .log_density(&[1.0])
            .expect("query dim matches the density");
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn scott_bandwidth_scales_down_with_n() {
        let mut rng = StdRng::seed_from_u64(0);
        let small = Tensor::rand_normal(&[20, 2], 0.0, 1.0, &mut rng);
        let large = Tensor::rand_normal(&[2000, 2], 0.0, 1.0, &mut rng);
        let ks = Kde::fit_scott(&small).expect("nonempty data fits a KDE");
        let kl = Kde::fit_scott(&large).expect("nonempty data fits a KDE");
        assert!(kl.bandwidth() < ks.bandwidth());
    }

    #[test]
    fn kde_approximates_standard_normal() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = Tensor::rand_normal(&[2000, 1], 0.0, 1.0, &mut rng);
        let kde = Kde::fit_scott(&data).expect("nonempty data fits a KDE");
        // Compare to the analytic standard normal at a few points.
        for x in [-1.0f32, 0.0, 1.0] {
            let est = kde.density(&[x]).expect("query dim matches the density");
            let truth = (-0.5 * (x as f64).powi(2)).exp() / TAU.sqrt();
            assert!(
                (est - truth).abs() < 0.05,
                "at {x}: est {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn sampling_stays_near_data() {
        let data =
            Tensor::from_vec(vec![5.0, 5.0], &[1, 2]).expect("element count matches the shape");
        let kde = Kde::fit(&data, 0.1).expect("element count matches the shape");
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let s = kde
                .sample(&mut rng)
                .expect("element count matches the shape");
            assert!((s[0] - 5.0).abs() < 1.0 && (s[1] - 5.0).abs() < 1.0);
        }
    }

    #[test]
    fn score_points_toward_data() {
        let data =
            Tensor::from_vec(vec![0.0, 0.0], &[1, 2]).expect("element count matches the shape");
        let kde = Kde::fit(&data, 1.0).expect("element count matches the shape");
        // Single standard kernel: score = −x.
        let g = kde
            .grad_log_density(&[1.5, -0.5])
            .expect("query dim matches the density");
        assert!((g[0] + 1.5).abs() < 1e-5);
        assert!((g[1] - 0.5).abs() < 1e-5);
        assert!(kde.grad_log_density(&[0.0]).is_err());
    }

    #[test]
    fn score_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = Tensor::rand_normal(&[30, 2], 0.0, 1.0, &mut rng);
        let kde = Kde::fit(&data, 0.5).expect("nonempty data and a positive bandwidth fit a KDE");
        let x = [0.4f32, -0.2];
        let analytic = kde
            .grad_log_density(&x)
            .expect("query dim matches the density");
        let h = 1e-3f32;
        for j in 0..2 {
            let mut xp = x;
            xp[j] += h;
            let mut xm = x;
            xm[j] -= h;
            let num = ((kde.log_density(&xp).expect("query dim matches the density")
                - kde.log_density(&xm).expect("query dim matches the density"))
                / (2.0 * h as f64)) as f32;
            assert!((num - analytic[j]).abs() < 1e-2);
        }
    }

    #[test]
    fn serde_round_trip() {
        let data =
            Tensor::from_vec(vec![1.0, 2.0], &[2, 1]).expect("element count matches the shape");
        let kde = Kde::fit(&data, 0.7).expect("element count matches the shape");
        let json = serde_json::to_string(&kde).expect("element count matches the shape");
        let back: Kde = serde_json::from_str(&json).expect("element count matches the shape");
        assert_eq!(kde, back);
    }
}
