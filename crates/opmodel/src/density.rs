//! The density-model abstraction.

use crate::OpModelError;
use rand::rngs::StdRng;

/// A probability density over the input space — the continuous face of an
/// operational profile.
///
/// The paper treats the OP as "a probability distribution defined over the
/// whole input domain quantifying how the software will be operated"
/// (Musa). Ground-truth generators, kernel estimates and mixture fits all
/// implement this trait, so the testing pipeline can swap the *true* OP
/// for a *learned* one and measure the difference (experiment E8).
pub trait Density {
    /// Dimensionality of the space the density lives on.
    fn dim(&self) -> usize;

    /// Natural-log density at `x`.
    ///
    /// # Errors
    ///
    /// Returns [`OpModelError::DimensionMismatch`] when `x` has the wrong
    /// length.
    fn log_density(&self, x: &[f32]) -> Result<f64, OpModelError>;

    /// Density at `x` (convenience wrapper over [`Density::log_density`]).
    ///
    /// # Errors
    ///
    /// Same as [`Density::log_density`].
    fn density(&self, x: &[f32]) -> Result<f64, OpModelError> {
        Ok(self.log_density(x)?.exp())
    }

    /// Draws one sample from the density.
    ///
    /// # Errors
    ///
    /// Implementations may fail when the model is degenerate.
    fn sample(&self, rng: &mut StdRng) -> Result<Vec<f32>, OpModelError>;

    /// Gradient of the log-density at `x` (`∇ₓ log p(x)`, the score
    /// function). Naturalness-guided test generation ascends this to keep
    /// perturbed inputs in high-OP regions.
    ///
    /// The default implementation uses central finite differences with
    /// step `1e-3` — correct but `2·dim` density evaluations per call;
    /// mixture models override it with the analytic score.
    ///
    /// # Errors
    ///
    /// Returns [`OpModelError::DimensionMismatch`] when `x` has the wrong
    /// length.
    fn grad_log_density(&self, x: &[f32]) -> Result<Vec<f32>, OpModelError> {
        let h = 1e-3f32;
        let mut grad = vec![0.0f32; x.len()];
        let mut probe = x.to_vec();
        for j in 0..x.len() {
            probe[j] = x[j] + h;
            let fp = self.log_density(&probe)?;
            probe[j] = x[j] - h;
            let fm = self.log_density(&probe)?;
            probe[j] = x[j];
            grad[j] = ((fp - fm) / (2.0 * h as f64)) as f32;
        }
        Ok(grad)
    }
}

/// Numerically-stable `log(Σ exp(xs))`.
pub(crate) fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sum_exp_stability() {
        // Huge magnitudes must not overflow.
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + 2.0f64.ln())).abs() < 1e-9);
        let v = log_sum_exp(&[-1000.0, -1000.0]);
        assert!((v - (-1000.0 + 2.0f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn log_sum_exp_empty_and_single() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert!((log_sum_exp(&[3.5]) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_matches_naive_in_safe_range() {
        let xs = [0.1f64, -0.5, 1.2, 0.0];
        let naive: f64 = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
    }
}
