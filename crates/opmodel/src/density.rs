//! The density-model abstraction.

use crate::OpModelError;
use opad_tensor::Tensor;
use rand::rngs::StdRng;

/// A probability density over the input space — the continuous face of an
/// operational profile.
///
/// The paper treats the OP as "a probability distribution defined over the
/// whole input domain quantifying how the software will be operated"
/// (Musa). Ground-truth generators, kernel estimates and mixture fits all
/// implement this trait, so the testing pipeline can swap the *true* OP
/// for a *learned* one and measure the difference (experiment E8).
pub trait Density {
    /// Dimensionality of the space the density lives on.
    fn dim(&self) -> usize;

    /// Natural-log density at `x`.
    ///
    /// # Errors
    ///
    /// Returns [`OpModelError::DimensionMismatch`] when `x` has the wrong
    /// length.
    fn log_density(&self, x: &[f32]) -> Result<f64, OpModelError>;

    /// Density at `x` (convenience wrapper over [`Density::log_density`]).
    ///
    /// # Errors
    ///
    /// Same as [`Density::log_density`].
    fn density(&self, x: &[f32]) -> Result<f64, OpModelError> {
        Ok(self.log_density(x)?.exp())
    }

    /// Draws one sample from the density.
    ///
    /// # Errors
    ///
    /// Implementations may fail when the model is degenerate.
    fn sample(&self, rng: &mut StdRng) -> Result<Vec<f32>, OpModelError>;

    /// Gradient of the log-density at `x` (`∇ₓ log p(x)`, the score
    /// function). Naturalness-guided test generation ascends this to keep
    /// perturbed inputs in high-OP regions.
    ///
    /// The default implementation uses central finite differences with
    /// step `1e-3` — correct but `2·dim` density evaluations per call;
    /// mixture models override it with the analytic score.
    ///
    /// # Errors
    ///
    /// Returns [`OpModelError::DimensionMismatch`] when `x` has the wrong
    /// length.
    fn grad_log_density(&self, x: &[f32]) -> Result<Vec<f32>, OpModelError> {
        let h = 1e-3f32;
        let mut grad = vec![0.0f32; x.len()];
        let mut probe = x.to_vec();
        for j in 0..x.len() {
            probe[j] = x[j] + h;
            let fp = self.log_density(&probe)?;
            probe[j] = x[j] - h;
            let fm = self.log_density(&probe)?;
            probe[j] = x[j];
            grad[j] = ((fp - fm) / (2.0 * h as f64)) as f32;
        }
        Ok(grad)
    }
}

/// Evaluates `density.log_density` on every row of a `[n, d]` matrix,
/// fanning out over fixed 64-row chunks of query points.
///
/// Determinism: chunk boundaries depend only on `n`, each row is evaluated
/// exactly as in the serial loop, and chunk results (including errors) are
/// combined in row order — so the output, and which error surfaces when
/// several rows fail, are identical at every thread count.
///
/// # Errors
///
/// Returns [`OpModelError::DimensionMismatch`] when `data` is not a matrix
/// of `density.dim()`-wide rows, and propagates the first (by row order)
/// [`Density::log_density`] failure.
pub fn log_density_batch<D>(density: &D, data: &Tensor) -> Result<Vec<f64>, OpModelError>
where
    D: Density + Sync + ?Sized,
{
    let d = density.dim();
    if data.rank() != 2 || data.dims()[1] != d {
        return Err(OpModelError::DimensionMismatch {
            expected: d,
            actual: if data.rank() == 2 {
                data.dims()[1]
            } else {
                data.len()
            },
        });
    }
    let n = data.dims()[0];
    let xs = data.as_slice();
    const CHUNK_ROWS: usize = 64;
    let chunks = opad_par::par_ranges(n, CHUNK_ROWS, |_, rows| {
        let mut part = Vec::with_capacity(rows.len());
        for i in rows {
            part.push(density.log_density(&xs[i * d..(i + 1) * d])?);
        }
        Ok::<Vec<f64>, OpModelError>(part)
    });
    let mut out = Vec::with_capacity(n);
    for chunk in chunks {
        out.extend(chunk?);
    }
    Ok(out)
}

/// Numerically-stable `log(Σ exp(xs))`.
pub(crate) fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sum_exp_stability() {
        // Huge magnitudes must not overflow.
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + 2.0f64.ln())).abs() < 1e-9);
        let v = log_sum_exp(&[-1000.0, -1000.0]);
        assert!((v - (-1000.0 + 2.0f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn log_sum_exp_empty_and_single() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert!((log_sum_exp(&[3.5]) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_matches_naive_in_safe_range() {
        let xs = [0.1f64, -0.5, 1.2, 0.0];
        let naive: f64 = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
    }

    /// A deterministic toy density for exercising the batch evaluator.
    struct Quadratic {
        d: usize,
    }

    impl Density for Quadratic {
        fn dim(&self) -> usize {
            self.d
        }

        fn log_density(&self, x: &[f32]) -> Result<f64, OpModelError> {
            if x.len() != self.d {
                return Err(OpModelError::DimensionMismatch {
                    expected: self.d,
                    actual: x.len(),
                });
            }
            Ok(-x.iter().map(|&v| v as f64 * v as f64).sum::<f64>())
        }

        fn sample(&self, _rng: &mut StdRng) -> Result<Vec<f32>, OpModelError> {
            Ok(vec![0.0; self.d])
        }
    }

    #[test]
    fn log_density_batch_matches_serial_loop_at_any_thread_count() {
        let q = Quadratic { d: 3 };
        // 130 rows: two full 64-row chunks plus a ragged tail.
        let data = Tensor::from_fn(&[130, 3], |ix| (ix[0] * 3 + ix[1]) as f32 * 0.01 - 1.0);
        let want: Vec<f64> = (0..130)
            .map(|i| {
                q.log_density(&data.as_slice()[i * 3..(i + 1) * 3])
                    .expect("row width matches the density")
            })
            .collect();
        for threads in [1usize, 2, 4, 8] {
            let _pin = opad_par::override_threads(threads);
            let got = log_density_batch(&q, &data).expect("row width matches the density");
            let same_bits = want
                .iter()
                .zip(&got)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same_bits, "batch differs at {threads} threads");
        }
    }

    #[test]
    fn log_density_batch_rejects_bad_shapes() {
        let q = Quadratic { d: 3 };
        assert!(log_density_batch(&q, &Tensor::zeros(&[4, 2])).is_err());
        assert!(log_density_batch(&q, &Tensor::zeros(&[6])).is_err());
        // Empty batch is fine.
        assert_eq!(
            log_density_batch(&q, &Tensor::zeros(&[0, 3])).expect("empty batch is valid"),
            Vec::<f64>::new()
        );
    }
}
