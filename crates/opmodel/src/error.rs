//! Error types for operational-profile modelling.

use thiserror::Error;

/// Error produced while fitting or querying operational-profile models.
#[derive(Debug, Error, Clone, PartialEq)]
pub enum OpModelError {
    /// A tensor operation failed.
    #[error("tensor operation failed: {0}")]
    Tensor(#[from] opad_tensor::TensorError),

    /// Data was unsuitable for fitting (too few points, wrong dims, …).
    #[error("cannot fit model: {reason}")]
    CannotFit {
        /// Human-readable description.
        reason: String,
    },

    /// A query point had the wrong dimensionality.
    #[error("query has dimension {actual}, model expects {expected}")]
    DimensionMismatch {
        /// Dimensionality the model was fitted on.
        expected: usize,
        /// Dimensionality of the query.
        actual: usize,
    },

    /// Invalid hyperparameter.
    #[error("invalid parameter: {reason}")]
    InvalidParameter {
        /// Human-readable description.
        reason: String,
    },

    /// Distribution vectors disagree in length or are not distributions.
    #[error("invalid distribution: {reason}")]
    InvalidDistribution {
        /// Human-readable description.
        reason: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = OpModelError::DimensionMismatch {
            expected: 2,
            actual: 3,
        };
        assert!(e.to_string().contains('2'));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OpModelError>();
    }
}
