//! # opad-opmodel
//!
//! Operational-profile modelling (the paper's RQ1): how will the deployed
//! DL system actually be used, and how do we learn that from field data?
//!
//! * [`OperationalProfile`] — Musa-style class-usage probabilities paired
//!   with an input-space [`Density`] ("local OP"/naturalness oracle);
//! * densities: [`Gmm`] (EM-fitted or ground-truth) and [`Kde`];
//! * [`Partition`]s of the input space into cells ([`CentroidPartition`],
//!   [`GridPartition`]) for ReAsDL-style reliability assessment;
//! * divergences ([`kl_divergence`], [`js_divergence`], [`tv_distance`])
//!   quantifying train/OP mismatch;
//! * [`LinearDrift`] for post-deployment profile change.
//!
//! # Examples
//!
//! ```
//! use opad_data::{gaussian_clusters, zipf_probs, GaussianClustersConfig};
//! use opad_opmodel::learn_op_gmm;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let cfg = GaussianClustersConfig::default();
//! let field = gaussian_clusters(&cfg, 500, &zipf_probs(3, 1.0), &mut rng)?;
//! let op = learn_op_gmm(&field, 3, 10, &mut rng)?;
//! assert_eq!(op.num_classes(), 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod bench;
mod density;
mod divergence;
mod error;
mod gmm;
mod kde;
mod partition;
mod pca;
mod profile;

pub use bench::OpModelBenches;
pub use density::{log_density_batch, Density};
pub use divergence::{js_divergence, kl_divergence, tv_distance};
pub use error::OpModelError;
pub use gmm::{Gmm, GmmComponent};
pub use kde::Kde;
pub use partition::{CellOccupancy, CentroidPartition, GridPartition, Partition};
pub use pca::Pca;
pub use profile::{
    empirical_class_probs, learn_op_gmm, learn_op_kde, LinearDrift, OperationalProfile,
};
