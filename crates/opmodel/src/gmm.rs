//! Isotropic Gaussian mixture models, fitted by EM or constructed from
//! known parameters (ground-truth operational profiles).

use crate::density::{log_sum_exp, Density};
use crate::OpModelError;
use opad_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::f64::consts::TAU;

/// One isotropic Gaussian component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GmmComponent {
    /// Mixing weight (components sum to 1).
    pub weight: f64,
    /// Component mean.
    pub mean: Vec<f32>,
    /// Isotropic standard deviation (shared across dimensions).
    pub std: f64,
}

/// An isotropic Gaussian mixture: `p(x) = Σ wᵢ N(x; μᵢ, σᵢ²I)`.
///
/// Doubles as (a) the *ground-truth* OP of the Gaussian-cluster datasets
/// (constructed from the generator's own parameters) and (b) a *learned*
/// OP (fitted with [`Gmm::fit`], RQ1).
///
/// # Examples
///
/// ```
/// use opad_opmodel::{Density, Gmm, GmmComponent};
///
/// let gmm = Gmm::from_components(vec![GmmComponent {
///     weight: 1.0,
///     mean: vec![0.0, 0.0],
///     std: 1.0,
/// }])?;
/// // Standard normal at the origin: log p = −log(2π).
/// let lp = gmm.log_density(&[0.0, 0.0])?;
/// assert!((lp + (2.0 * std::f64::consts::PI).ln()).abs() < 1e-9);
/// # Ok::<(), opad_opmodel::OpModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gmm {
    components: Vec<GmmComponent>,
    dim: usize,
}

impl Gmm {
    /// Builds a mixture from explicit components.
    ///
    /// # Errors
    ///
    /// Fails when components are empty, weights don't sum to ≈1, dims
    /// disagree, or any std is non-positive.
    pub fn from_components(components: Vec<GmmComponent>) -> Result<Self, OpModelError> {
        let first = components.first().ok_or(OpModelError::CannotFit {
            reason: "mixture needs at least one component".into(),
        })?;
        let dim = first.mean.len();
        if dim == 0 {
            return Err(OpModelError::InvalidParameter {
                reason: "component means must be nonempty".into(),
            });
        }
        let wsum: f64 = components.iter().map(|c| c.weight).sum();
        if (wsum - 1.0).abs() > 1e-6 {
            return Err(OpModelError::InvalidDistribution {
                reason: format!("weights sum to {wsum}"),
            });
        }
        for c in &components {
            if c.mean.len() != dim {
                return Err(OpModelError::InvalidParameter {
                    reason: "component dims disagree".into(),
                });
            }
            if c.std <= 0.0 || !c.std.is_finite() || c.weight < 0.0 {
                return Err(OpModelError::InvalidParameter {
                    reason: "stds must be positive and weights nonnegative".into(),
                });
            }
        }
        Ok(Gmm { components, dim })
    }

    /// Weighted-moment merge of two shard mixtures.
    ///
    /// When each part was fitted on a disjoint data slice, the pooled
    /// density is the sample-count-weighted mixture of the parts:
    /// `p(x) = (n₁ p₁(x) + n₂ p₂(x)) / (n₁ + n₂)`. Every moment of the
    /// pooled distribution (mean, covariance, …) is preserved exactly,
    /// because a mixture's moments are the weighted moments of its
    /// members. Component count grows additively; callers that need a
    /// fixed-size model can refit on samples of the merge.
    ///
    /// # Errors
    ///
    /// Fails on a dimension mismatch or when both sample counts are zero.
    pub fn merge_weighted(
        &self,
        other: &Gmm,
        n_self: u64,
        n_other: u64,
    ) -> Result<Gmm, OpModelError> {
        if self.dim != other.dim {
            return Err(OpModelError::DimensionMismatch {
                expected: self.dim,
                actual: other.dim,
            });
        }
        let total = n_self + n_other;
        if total == 0 {
            return Err(OpModelError::InvalidParameter {
                reason: "cannot merge mixtures with zero total sample weight".into(),
            });
        }
        let (wa, wb) = (n_self as f64 / total as f64, n_other as f64 / total as f64);
        let mut components = Vec::with_capacity(self.components.len() + other.components.len());
        components.extend(self.components.iter().map(|c| GmmComponent {
            weight: c.weight * wa,
            mean: c.mean.clone(),
            std: c.std,
        }));
        components.extend(other.components.iter().map(|c| GmmComponent {
            weight: c.weight * wb,
            mean: c.mean.clone(),
            std: c.std,
        }));
        Gmm::from_components(components)
    }

    /// Fits a `k`-component mixture with expectation–maximisation,
    /// initialised from `k` random data points.
    ///
    /// # Errors
    ///
    /// Fails when the data is not a matrix with at least `k` rows.
    pub fn fit(
        data: &Tensor,
        k: usize,
        iterations: usize,
        rng: &mut StdRng,
    ) -> Result<Self, OpModelError> {
        if data.rank() != 2 {
            return Err(OpModelError::CannotFit {
                reason: "data must be a [n, d] matrix".into(),
            });
        }
        let (n, d) = (data.dims()[0], data.dims()[1]);
        if k == 0 || n < k {
            return Err(OpModelError::CannotFit {
                reason: format!("need at least k={k} points, got {n}"),
            });
        }
        let xs = data.as_slice();
        // Init: k distinct random rows as means, global std as scale.
        let mut mean_idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            mean_idx.swap(i, j);
        }
        let global_std = (data.variance() as f64).sqrt().max(1e-3);
        let mut comps: Vec<GmmComponent> = mean_idx[..k]
            .iter()
            .map(|&i| GmmComponent {
                weight: 1.0 / k as f64,
                mean: xs[i * d..(i + 1) * d].to_vec(),
                std: global_std,
            })
            .collect();

        let mut resp = vec![0.0f64; n * k];
        for _ in 0..iterations {
            // E step.
            for i in 0..n {
                let x = &xs[i * d..(i + 1) * d];
                let logs: Vec<f64> = comps
                    .iter()
                    .map(|c| c.weight.max(1e-12).ln() + log_normal_iso(x, &c.mean, c.std))
                    .collect();
                let lse = log_sum_exp(&logs);
                for (j, &l) in logs.iter().enumerate() {
                    resp[i * k + j] = (l - lse).exp();
                }
            }
            // M step.
            for (j, comp) in comps.iter_mut().enumerate() {
                let nj: f64 = (0..n).map(|i| resp[i * k + j]).sum();
                if nj < 1e-9 {
                    continue; // dead component: keep previous parameters
                }
                comp.weight = nj / n as f64;
                let mut mean = vec![0.0f64; d];
                for i in 0..n {
                    let r = resp[i * k + j];
                    for (m, &x) in mean.iter_mut().zip(&xs[i * d..(i + 1) * d]) {
                        *m += r * x as f64;
                    }
                }
                for m in &mut mean {
                    *m /= nj;
                }
                let mut var = 0.0f64;
                for i in 0..n {
                    let r = resp[i * k + j];
                    let mut d2 = 0.0f64;
                    for (m, &x) in mean.iter().zip(&xs[i * d..(i + 1) * d]) {
                        let diff = x as f64 - m;
                        d2 += diff * diff;
                    }
                    var += r * d2;
                }
                var /= nj * d as f64;
                comp.std = var.sqrt().max(1e-4);
                comp.mean = mean.into_iter().map(|m| m as f32).collect();
            }
            // Renormalise weights (guards dead components).
            let wsum: f64 = comps.iter().map(|c| c.weight).sum();
            for c in &mut comps {
                c.weight /= wsum;
            }
        }
        Gmm::from_components(comps)
    }

    /// The mixture components.
    pub fn components(&self) -> &[GmmComponent] {
        &self.components
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Mean log-likelihood of a dataset under the mixture.
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch.
    pub fn mean_log_likelihood(&self, data: &Tensor) -> Result<f64, OpModelError> {
        if data.rank() != 2 || data.dims()[0] == 0 {
            return Err(OpModelError::CannotFit {
                reason: "need a nonempty [n, d] matrix".into(),
            });
        }
        let (n, d) = (data.dims()[0], data.dims()[1]);
        let mut acc = 0.0;
        for i in 0..n {
            acc += self.log_density(&data.as_slice()[i * d..(i + 1) * d])?;
        }
        Ok(acc / n as f64)
    }
}

/// Log-density of an isotropic Gaussian.
fn log_normal_iso(x: &[f32], mean: &[f32], std: f64) -> f64 {
    let d = x.len() as f64;
    let mut sq = 0.0f64;
    for (&xi, &mi) in x.iter().zip(mean) {
        let diff = xi as f64 - mi as f64;
        sq += diff * diff;
    }
    -0.5 * d * (TAU * std * std).ln() - sq / (2.0 * std * std)
}

impl Density for Gmm {
    fn dim(&self) -> usize {
        self.dim
    }

    fn log_density(&self, x: &[f32]) -> Result<f64, OpModelError> {
        if x.len() != self.dim {
            return Err(OpModelError::DimensionMismatch {
                expected: self.dim,
                actual: x.len(),
            });
        }
        let logs: Vec<f64> = self
            .components
            .iter()
            .map(|c| c.weight.max(1e-300).ln() + log_normal_iso(x, &c.mean, c.std))
            .collect();
        Ok(log_sum_exp(&logs))
    }

    /// Analytic score: `∇ log p(x) = Σᵢ rᵢ(x) (μᵢ − x)/σᵢ²` with
    /// responsibilities `rᵢ`.
    fn grad_log_density(&self, x: &[f32]) -> Result<Vec<f32>, OpModelError> {
        if x.len() != self.dim {
            return Err(OpModelError::DimensionMismatch {
                expected: self.dim,
                actual: x.len(),
            });
        }
        let logs: Vec<f64> = self
            .components
            .iter()
            .map(|c| c.weight.max(1e-300).ln() + log_normal_iso(x, &c.mean, c.std))
            .collect();
        let lse = log_sum_exp(&logs);
        let mut grad = vec![0.0f32; self.dim];
        for (c, &l) in self.components.iter().zip(&logs) {
            let r = (l - lse).exp();
            let inv_var = 1.0 / (c.std * c.std);
            for (g, (&m, &xi)) in grad.iter_mut().zip(c.mean.iter().zip(x)) {
                *g += (r * inv_var * (m as f64 - xi as f64)) as f32;
            }
        }
        Ok(grad)
    }

    fn sample(&self, rng: &mut StdRng) -> Result<Vec<f32>, OpModelError> {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut chosen = self.components.len() - 1;
        for (i, c) in self.components.iter().enumerate() {
            acc += c.weight;
            if u < acc {
                chosen = i;
                break;
            }
        }
        let c = &self.components[chosen];
        let noise = Tensor::rand_normal(&[self.dim], 0.0, c.std as f32, rng);
        Ok(c.mean
            .iter()
            .zip(noise.as_slice())
            .map(|(&m, &n)| m + n)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    fn std_normal_2d() -> Gmm {
        Gmm::from_components(vec![GmmComponent {
            weight: 1.0,
            mean: vec![0.0, 0.0],
            std: 1.0,
        }])
        .expect("the components form a valid mixture")
    }

    #[test]
    fn construction_validation() {
        assert!(Gmm::from_components(vec![]).is_err());
        assert!(Gmm::from_components(vec![GmmComponent {
            weight: 0.5,
            mean: vec![0.0],
            std: 1.0
        }])
        .is_err());
        assert!(Gmm::from_components(vec![GmmComponent {
            weight: 1.0,
            mean: vec![0.0],
            std: 0.0
        }])
        .is_err());
        assert!(Gmm::from_components(vec![GmmComponent {
            weight: 1.0,
            mean: vec![],
            std: 1.0
        }])
        .is_err());
        assert!(Gmm::from_components(vec![
            GmmComponent {
                weight: 0.5,
                mean: vec![0.0],
                std: 1.0
            },
            GmmComponent {
                weight: 0.5,
                mean: vec![0.0, 1.0],
                std: 1.0
            }
        ])
        .is_err());
    }

    #[test]
    fn standard_normal_log_density() {
        let g = std_normal_2d();
        let lp0 = g
            .log_density(&[0.0, 0.0])
            .expect("query dim matches the density");
        assert!((lp0 + TAU.ln()).abs() < 1e-9);
        // Density decreases away from the mean.
        let lp1 = g
            .log_density(&[1.0, 1.0])
            .expect("query dim matches the density");
        assert!(lp1 < lp0);
        assert!((lp0 - lp1 - 1.0).abs() < 1e-9); // difference = ‖x‖²/2 = 1
        assert!(g.log_density(&[0.0]).is_err());
    }

    #[test]
    fn mixture_density_integrates_mass_between_modes() {
        let g = Gmm::from_components(vec![
            GmmComponent {
                weight: 0.5,
                mean: vec![-3.0],
                std: 0.5,
            },
            GmmComponent {
                weight: 0.5,
                mean: vec![3.0],
                std: 0.5,
            },
        ])
        .expect("the components form a valid mixture");
        let at_mode = g.density(&[3.0]).expect("query dim matches the density");
        let between = g.density(&[0.0]).expect("query dim matches the density");
        assert!(at_mode > 100.0 * between);
    }

    #[test]
    fn sampling_matches_mixture_proportions() {
        let g = Gmm::from_components(vec![
            GmmComponent {
                weight: 0.8,
                mean: vec![-5.0],
                std: 0.3,
            },
            GmmComponent {
                weight: 0.2,
                mean: vec![5.0],
                std: 0.3,
            },
        ])
        .expect("the components form a valid mixture");
        let mut r = rng();
        let mut left = 0usize;
        const N: usize = 5000;
        for _ in 0..N {
            let x = g.sample(&mut r).expect("a valid density always samples");
            if x[0] < 0.0 {
                left += 1;
            }
        }
        let f = left as f64 / N as f64;
        assert!((f - 0.8).abs() < 0.03, "left fraction {f}");
    }

    #[test]
    fn em_recovers_two_well_separated_clusters() {
        let mut r = rng();
        let truth = Gmm::from_components(vec![
            GmmComponent {
                weight: 0.5,
                mean: vec![-4.0, 0.0],
                std: 0.5,
            },
            GmmComponent {
                weight: 0.5,
                mean: vec![4.0, 0.0],
                std: 0.5,
            },
        ])
        .expect("the components form a valid mixture");
        let rows: Vec<Tensor> = (0..400)
            .map(|_| {
                Tensor::from_slice(
                    &truth
                        .sample(&mut r)
                        .expect("a valid density always samples"),
                )
            })
            .collect();
        let data = Tensor::stack_rows(&rows).expect("rows share one width");
        let fitted = Gmm::fit(&data, 2, 30, &mut r).expect("rows share one width");
        // Means near ±4 on x.
        let mut xs: Vec<f32> = fitted.components().iter().map(|c| c.mean[0]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("rows share one width"));
        assert!((xs[0] + 4.0).abs() < 0.5, "left mean {}", xs[0]);
        assert!((xs[1] - 4.0).abs() < 0.5, "right mean {}", xs[1]);
        for c in fitted.components() {
            assert!((c.std - 0.5).abs() < 0.25, "std {}", c.std);
            assert!((c.weight - 0.5).abs() < 0.15, "weight {}", c.weight);
        }
    }

    #[test]
    fn em_improves_likelihood() {
        let mut r = rng();
        let truth = std_normal_2d();
        let rows: Vec<Tensor> = (0..200)
            .map(|_| {
                Tensor::from_slice(
                    &truth
                        .sample(&mut r)
                        .expect("a valid density always samples"),
                )
            })
            .collect();
        let data = Tensor::stack_rows(&rows).expect("rows share one width");
        let mut r1 = StdRng::seed_from_u64(3);
        let short = Gmm::fit(&data, 3, 1, &mut r1).expect("rows share one width");
        let mut r2 = StdRng::seed_from_u64(3);
        let long = Gmm::fit(&data, 3, 25, &mut r2).expect("rows share one width");
        let ll_short = short
            .mean_log_likelihood(&data)
            .expect("rows share one width");
        let ll_long = long
            .mean_log_likelihood(&data)
            .expect("rows share one width");
        assert!(
            ll_long >= ll_short - 1e-6,
            "EM should not decrease likelihood: {ll_short} → {ll_long}"
        );
    }

    #[test]
    fn fit_validation() {
        let mut r = rng();
        assert!(Gmm::fit(&Tensor::zeros(&[5]), 2, 5, &mut r).is_err());
        assert!(Gmm::fit(&Tensor::zeros(&[3, 2]), 4, 5, &mut r).is_err());
        assert!(Gmm::fit(&Tensor::zeros(&[3, 2]), 0, 5, &mut r).is_err());
    }

    #[test]
    fn mean_log_likelihood_validation() {
        let g = std_normal_2d();
        assert!(g.mean_log_likelihood(&Tensor::zeros(&[2])).is_err());
        let data = Tensor::zeros(&[3, 2]);
        let ll = g
            .mean_log_likelihood(&data)
            .expect("data dim matches the mixture");
        assert!((ll + TAU.ln()).abs() < 1e-9);
    }

    #[test]
    fn score_matches_finite_difference() {
        let g = Gmm::from_components(vec![
            GmmComponent {
                weight: 0.6,
                mean: vec![-1.0, 0.5],
                std: 0.8,
            },
            GmmComponent {
                weight: 0.4,
                mean: vec![2.0, -1.0],
                std: 1.2,
            },
        ])
        .expect("the components form a valid mixture");
        let x = [0.3f32, 0.1];
        let analytic = g
            .grad_log_density(&x)
            .expect("query dim matches the density");
        // Default-impl finite difference path through Density.
        struct Fd<'a>(&'a Gmm);
        impl Density for Fd<'_> {
            fn dim(&self) -> usize {
                self.0.dim()
            }
            fn log_density(&self, x: &[f32]) -> Result<f64, OpModelError> {
                self.0.log_density(x)
            }
            fn sample(&self, rng: &mut StdRng) -> Result<Vec<f32>, OpModelError> {
                self.0.sample(rng)
            }
        }
        let numeric = Fd(&g)
            .grad_log_density(&x)
            .expect("query dim matches the density");
        for (a, n) in analytic.iter().zip(&numeric) {
            assert!((a - n).abs() < 1e-2, "analytic {a} vs numeric {n}");
        }
        assert!(g.grad_log_density(&[0.0]).is_err());
    }

    #[test]
    fn score_points_toward_the_mode() {
        let g = std_normal_2d();
        let grad = g
            .grad_log_density(&[2.0, 0.0])
            .expect("query dim matches the density");
        // For N(0, I): ∇log p = −x.
        assert!((grad[0] + 2.0).abs() < 1e-5);
        assert!(grad[1].abs() < 1e-5);
    }

    #[test]
    fn serde_round_trip() {
        let g = std_normal_2d();
        let json = serde_json::to_string(&g).expect("densities serialise to JSON");
        let back: Gmm = serde_json::from_str(&json).expect("densities serialise to JSON");
        assert_eq!(g, back);
    }
}
