//! Operational profiles: class-level usage frequencies paired with an
//! input-space density (RQ1).

use crate::{Density, Gmm, Kde, OpModelError};
use opad_data::Dataset;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// An operational profile: how the deployed system will be exercised.
///
/// Follows the paper's two-level view — a *coarse* categorical profile
/// (Musa-style: probability of each usage category/class) plus a *fine*
/// input-space density used as the "local OP"/naturalness oracle.
///
/// # Examples
///
/// ```
/// use opad_opmodel::{Gmm, GmmComponent, OperationalProfile};
///
/// let density = Gmm::from_components(vec![GmmComponent {
///     weight: 1.0,
///     mean: vec![0.0, 0.0],
///     std: 1.0,
/// }])?;
/// let op = OperationalProfile::new(vec![0.7, 0.3], density)?;
/// assert_eq!(op.num_classes(), 2);
/// assert!(op.log_density(&[0.0, 0.0])? > op.log_density(&[9.0, 9.0])?);
/// # Ok::<(), opad_opmodel::OpModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperationalProfile<D> {
    class_probs: Vec<f64>,
    density: D,
}

impl<D: Density> OperationalProfile<D> {
    /// Creates a profile from class probabilities and a density model.
    ///
    /// # Errors
    ///
    /// Fails when `class_probs` is not a distribution.
    pub fn new(class_probs: Vec<f64>, density: D) -> Result<Self, OpModelError> {
        let sum: f64 = class_probs.iter().sum();
        if class_probs.is_empty()
            || class_probs.iter().any(|&p| p < 0.0 || !p.is_finite())
            || (sum - 1.0).abs() > 1e-6
        {
            return Err(OpModelError::InvalidDistribution {
                reason: format!("class probabilities sum to {sum}"),
            });
        }
        Ok(OperationalProfile {
            class_probs,
            density,
        })
    }

    /// Per-class usage probabilities.
    pub fn class_probs(&self) -> &[f64] {
        &self.class_probs
    }

    /// Number of usage classes.
    pub fn num_classes(&self) -> usize {
        self.class_probs.len()
    }

    /// The input-space density model.
    pub fn density(&self) -> &D {
        &self.density
    }

    /// Log-density of an input under the profile.
    ///
    /// # Errors
    ///
    /// Propagates the density model's dimension check.
    pub fn log_density(&self, x: &[f32]) -> Result<f64, OpModelError> {
        self.density.log_density(x)
    }

    /// Draws an input from the profile's density.
    ///
    /// # Errors
    ///
    /// Propagates density-model sampling failures.
    pub fn sample_input(&self, rng: &mut StdRng) -> Result<Vec<f32>, OpModelError> {
        self.density.sample(rng)
    }

    /// Maps the density into the other density type (e.g. swapping the
    /// ground truth for an estimate while keeping class probabilities).
    pub fn with_density<E: Density>(&self, density: E) -> OperationalProfile<E> {
        OperationalProfile {
            class_probs: self.class_probs.clone(),
            density,
        }
    }
}

/// Empirical class probabilities with Laplace smoothing `alpha`.
///
/// # Errors
///
/// Fails when `num_classes` is zero or a label is out of range.
pub fn empirical_class_probs(
    labels: &[usize],
    num_classes: usize,
    alpha: f64,
) -> Result<Vec<f64>, OpModelError> {
    if num_classes == 0 {
        return Err(OpModelError::InvalidParameter {
            reason: "num_classes must be nonzero".into(),
        });
    }
    let mut counts = vec![alpha; num_classes];
    for &l in labels {
        if l >= num_classes {
            return Err(OpModelError::InvalidParameter {
                reason: format!("label {l} out of range for {num_classes} classes"),
            });
        }
        counts[l] += 1.0;
    }
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return Err(OpModelError::InvalidDistribution {
            reason: "no observations and no smoothing".into(),
        });
    }
    Ok(counts.into_iter().map(|c| c / total).collect())
}

/// Learns an operational profile from field data: empirical class
/// frequencies plus a GMM density fitted by EM (RQ1).
///
/// # Errors
///
/// Fails when the dataset is smaller than `k` or EM cannot run.
pub fn learn_op_gmm(
    field_data: &Dataset,
    k: usize,
    em_iterations: usize,
    rng: &mut StdRng,
) -> Result<OperationalProfile<Gmm>, OpModelError> {
    let probs = empirical_class_probs(field_data.labels(), field_data.num_classes(), 1.0)?;
    let gmm = Gmm::fit(field_data.features(), k, em_iterations, rng)?;
    OperationalProfile::new(probs, gmm)
}

/// Learns an operational profile from field data with a KDE density
/// (Scott bandwidth).
///
/// # Errors
///
/// Fails on empty data.
pub fn learn_op_kde(field_data: &Dataset) -> Result<OperationalProfile<Kde>, OpModelError> {
    let probs = empirical_class_probs(field_data.labels(), field_data.num_classes(), 1.0)?;
    let kde = Kde::fit_scott(field_data.features())?;
    OperationalProfile::new(probs, kde)
}

/// A linear drift between two categorical profiles over a time horizon —
/// the paper stresses the OP is "not constant after deployment".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearDrift {
    from: Vec<f64>,
    to: Vec<f64>,
    horizon: usize,
}

impl LinearDrift {
    /// Creates a drift from `from` to `to` over `horizon` steps.
    ///
    /// # Errors
    ///
    /// Fails on mismatched lengths, non-distributions, or zero horizon.
    pub fn new(from: Vec<f64>, to: Vec<f64>, horizon: usize) -> Result<Self, OpModelError> {
        if from.len() != to.len() || from.is_empty() {
            return Err(OpModelError::InvalidDistribution {
                reason: "drift endpoints must be matched nonempty distributions".into(),
            });
        }
        for dist in [&from, &to] {
            let s: f64 = dist.iter().sum();
            if (s - 1.0).abs() > 1e-6 || dist.iter().any(|&p| p < 0.0) {
                return Err(OpModelError::InvalidDistribution {
                    reason: format!("endpoint sums to {s}"),
                });
            }
        }
        if horizon == 0 {
            return Err(OpModelError::InvalidParameter {
                reason: "horizon must be nonzero".into(),
            });
        }
        Ok(LinearDrift { from, to, horizon })
    }

    /// The profile at step `t` (clamped to the horizon).
    pub fn probs_at(&self, t: usize) -> Vec<f64> {
        let alpha = (t.min(self.horizon)) as f64 / self.horizon as f64;
        self.from
            .iter()
            .zip(&self.to)
            .map(|(&a, &b)| (1.0 - alpha) * a + alpha * b)
            .collect()
    }

    /// The drift horizon in steps.
    pub fn horizon(&self) -> usize {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GmmComponent;
    use opad_data::{gaussian_clusters, uniform_probs, zipf_probs, GaussianClustersConfig};
    use rand::SeedableRng;

    fn std_gmm() -> Gmm {
        Gmm::from_components(vec![GmmComponent {
            weight: 1.0,
            mean: vec![0.0, 0.0],
            std: 1.0,
        }])
        .expect("the components form a valid mixture")
    }

    #[test]
    fn profile_validation() {
        assert!(OperationalProfile::new(vec![0.5, 0.6], std_gmm()).is_err());
        assert!(OperationalProfile::new(vec![], std_gmm()).is_err());
        assert!(OperationalProfile::new(vec![-0.5, 1.5], std_gmm()).is_err());
        let op = OperationalProfile::new(vec![0.3, 0.7], std_gmm())
            .expect("a distribution over classes builds a profile");
        assert_eq!(op.num_classes(), 2);
        assert_eq!(op.class_probs(), &[0.3, 0.7]);
    }

    #[test]
    fn profile_sampling_and_density() {
        let op = OperationalProfile::new(vec![1.0], std_gmm())
            .expect("a distribution over classes builds a profile");
        let mut rng = StdRng::seed_from_u64(0);
        let x = op
            .sample_input(&mut rng)
            .expect("a distribution over classes builds a profile");
        assert_eq!(x.len(), 2);
        assert!(op
            .log_density(&x)
            .expect("a distribution over classes builds a profile")
            .is_finite());
    }

    #[test]
    fn with_density_swaps_model() {
        let op = OperationalProfile::new(vec![0.5, 0.5], std_gmm())
            .expect("a distribution over classes builds a profile");
        let data = opad_tensor::Tensor::from_vec(vec![0.0, 0.0], &[1, 2])
            .expect("a distribution over classes builds a profile");
        let kde = Kde::fit(&data, 1.0).expect("a distribution over classes builds a profile");
        let op2 = op.with_density(kde);
        assert_eq!(op2.class_probs(), op.class_probs());
    }

    #[test]
    fn empirical_probs() {
        let probs =
            empirical_class_probs(&[0, 0, 1], 2, 0.0).expect("labels fall inside the class range");
        assert!((probs[0] - 2.0 / 3.0).abs() < 1e-12);
        // Smoothing pulls toward uniform and covers unseen classes.
        let probs =
            empirical_class_probs(&[0, 0], 3, 1.0).expect("labels fall inside the class range");
        assert!(probs[2] > 0.0);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(empirical_class_probs(&[5], 2, 1.0).is_err());
        assert!(empirical_class_probs(&[], 0, 1.0).is_err());
        assert!(empirical_class_probs(&[], 2, 0.0).is_err());
    }

    #[test]
    fn learn_op_recovers_skew() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = GaussianClustersConfig::default();
        let field = gaussian_clusters(&cfg, 1500, &zipf_probs(3, 1.5), &mut rng)
            .expect("a valid generator config synthesises");
        let op =
            learn_op_gmm(&field, 3, 15, &mut rng).expect("a valid generator config synthesises");
        let truth = zipf_probs(3, 1.5);
        for (est, t) in op.class_probs().iter().zip(&truth) {
            assert!((est - t).abs() < 0.05, "estimated {est} vs true {t}");
        }
        // Density is higher near a cluster centre than far away.
        let c0 = opad_data::cluster_center(&cfg, 0);
        assert!(
            op.log_density(&c0).expect("query dim matches the density")
                > op.log_density(&[50.0, 50.0])
                    .expect("query dim matches the density")
        );
    }

    #[test]
    fn learn_op_kde_works() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = GaussianClustersConfig::default();
        let field = gaussian_clusters(&cfg, 300, &uniform_probs(3), &mut rng)
            .expect("a valid generator config synthesises");
        let op = learn_op_kde(&field).expect("a valid generator config synthesises");
        assert_eq!(op.num_classes(), 3);
        let c0 = opad_data::cluster_center(&cfg, 0);
        assert!(
            op.log_density(&c0).expect("query dim matches the density")
                > op.log_density(&[50.0, 50.0])
                    .expect("query dim matches the density")
        );
    }

    #[test]
    fn drift_interpolates() {
        let drift = LinearDrift::new(vec![1.0, 0.0], vec![0.0, 1.0], 10)
            .expect("query dim matches the density");
        assert_eq!(drift.probs_at(0), vec![1.0, 0.0]);
        assert_eq!(drift.probs_at(10), vec![0.0, 1.0]);
        let mid = drift.probs_at(5);
        assert!((mid[0] - 0.5).abs() < 1e-12);
        // Clamped beyond horizon.
        assert_eq!(drift.probs_at(99), vec![0.0, 1.0]);
        assert_eq!(drift.horizon(), 10);
    }

    #[test]
    fn drift_validation() {
        assert!(LinearDrift::new(vec![1.0], vec![0.5, 0.5], 5).is_err());
        assert!(LinearDrift::new(vec![0.5, 0.6], vec![0.5, 0.5], 5).is_err());
        assert!(LinearDrift::new(vec![0.5, 0.5], vec![0.5, 0.5], 0).is_err());
        assert!(LinearDrift::new(vec![], vec![], 5).is_err());
    }

    #[test]
    fn drift_stays_a_distribution() {
        let drift = LinearDrift::new(vec![0.7, 0.2, 0.1], vec![0.1, 0.1, 0.8], 7)
            .expect("both endpoints are distributions of one length");
        for t in 0..=7 {
            let p = drift.probs_at(t);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| v >= 0.0));
        }
    }
}
