//! Operational-profile drift: the paper stresses the OP is "not constant
//! after deployment". This example deploys a two-moons classifier, drifts
//! the class usage linearly over ten epochs of operation, and shows how
//! (a) delivered accuracy and the pfd estimate degrade if the OP model is
//! frozen, and (b) re-learning the OP restores calibrated claims.
//!
//! Run with: `cargo run --release --example drifting_profile`

use opad::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(99);

    // Train on balanced two-moons data with label noise via overlap.
    let train = two_moons(800, 0.15, &[0.5, 0.5], &mut rng)?;
    let mut net = Network::mlp(&[2, 24, 2], Activation::Tanh, &mut rng)?;
    Trainer::new(TrainConfig::new(40, 32), Optimizer::adam(0.01)).fit(
        &mut net,
        train.features(),
        train.labels(),
        None,
        &mut rng,
    )?;

    // Deployment: usage drifts from mostly-class-0 to mostly-class-1.
    let drift = LinearDrift::new(vec![0.9, 0.1], vec![0.1, 0.9], 10)?;
    // Freeze an OP learned at deployment time (t = 0).
    let initial_field = two_moons(600, 0.15, &drift.probs_at(0), &mut rng)?;
    let frozen_op = learn_op_kde(&initial_field)?;
    let partition = CentroidPartition::fit(initial_field.features(), 10, 20, &mut rng)?;

    println!("t | true probs        | acc   | JS(frozen‖true) | pfd (refreshed OP)");
    for t in 0..=drift.horizon() {
        let probs = drift.probs_at(t);
        let field_t = two_moons(600, 0.15, &probs, &mut rng)?;
        let acc = net.accuracy(field_t.features(), field_t.labels())?;

        // Divergence between the frozen OP's class belief and today's.
        let js = js_divergence(frozen_op.class_probs(), &probs)?;

        // A reliability estimate that *refreshes* the cell OP each epoch.
        let cell_op = partition.cell_distribution(field_t.features(), 0.5)?;
        let mut model = CellReliabilityModel::new(cell_op)?;
        let d = field_t.feature_dim();
        for i in 0..field_t.len() {
            let (x, label) = field_t.sample(i)?;
            let cell = partition.cell_of(&field_t.features().as_slice()[i * d..(i + 1) * d])?;
            let pred = net.predict_labels(&x.reshape(&[1, d])?)?[0];
            model.observe(cell, pred != label)?;
        }
        println!(
            "{t:2} | [{:.2}, {:.2}]      | {acc:.3} | {js:15.4} | {:.4}",
            probs[0],
            probs[1],
            model.pfd_mean()
        );
    }
    println!(
        "\nThe frozen profile's divergence grows with drift — the signal that\n\
         RQ1's OP learning must re-run; the refreshed pfd tracks the true risk."
    );
    Ok(())
}
