//! Head-to-head comparison of test-generation methods on the *operational*
//! yardstick: OP mass of the buggy cells each method uncovers per test
//! budget, and the naturalness of what it finds. A miniature of
//! experiment E2/E3 in `EXPERIMENTS.md`.
//!
//! Run with: `cargo run --release --example method_comparison`

use opad::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(5);

    // Observability: record attack counters and layer timings, streaming
    // span events to a JSONL trace alongside the printed table.
    let recorder = Arc::new(MetricsRecorder::with_sink(Arc::new(JsonlSink::create(
        "results/method_comparison_trace.jsonl",
    )?)));
    opad::telemetry::install(recorder.clone());

    // Rings: a nonlinear problem with real boundary structure.
    let train = rings(3, 900, 0.15, &uniform_probs(3), &mut rng)?;
    let field = rings(3, 900, 0.15, &zipf_probs(3, 1.5), &mut rng)?;
    let mut net = Network::mlp(&[2, 32, 32, 3], Activation::Relu, &mut rng)?;
    Trainer::new(TrainConfig::new(40, 32), Optimizer::adam(0.01)).fit(
        &mut net,
        train.features(),
        train.labels(),
        None,
        &mut rng,
    )?;
    println!(
        "operational accuracy before testing: {:.3}",
        net.accuracy(field.features(), field.labels())?
    );

    let op = learn_op_gmm(&field, 6, 25, &mut rng)?;
    let partition = CentroidPartition::fit(field.features(), 16, 25, &mut rng)?;
    let cell_op = partition.cell_distribution(field.features(), 0.5)?;
    let naturalness = DensityNaturalness::new(op.density().clone());
    let ball = NormBall::linf(0.25)?;
    const SEEDS: usize = 60;

    // Methods under comparison. Each gets the same seed budget; seeds for
    // the operational methods come from the OP×margin weighting, the
    // baseline attacks draw seeds uniformly.
    let pgd = Pgd::new(ball, 20, 0.06)?;
    let fgsm = Fgsm::new(0.25)?;
    let rand_fuzz = RandomFuzz::new(ball, 40)?;
    let nat_fuzz = NaturalFuzz::new(&naturalness, ball, 20, 0.06, 1.5)?.with_restarts(2);

    let run = |name: &str,
               attack: &dyn Attack,
               weighting: SeedWeighting,
               net: &mut Network,
               rng: &mut StdRng|
     -> Result<(), Box<dyn std::error::Error>> {
        let sampler = SeedSampler::new(weighting);
        let weights = sampler.weights(net, &field, Some(op.density()))?;
        let seeds = sampler.sample(&weights, SEEDS, rng)?;
        let mut corpus = AeCorpus::new();
        let mut queries = 0usize;
        for &i in &seeds {
            let (seed, label) = field.sample(i)?;
            let out = attack.run(net, &seed, label, rng)?;
            queries += out.queries;
            if let Some(ae) = classify_outcome(i, &seed, label, &out, op.density(), &partition)? {
                corpus.push(ae);
            }
        }
        println!(
            "{name:<22} | seeds {SEEDS:3} | AEs {:3} | cells {:2} | op-mass {:.3} | mean log-p {:>7.2} | queries {queries}",
            corpus.len(),
            corpus.distinct_cells().len(),
            corpus.op_mass_detected(&cell_op)?,
            corpus.mean_op_log_density().unwrap_or(f64::NEG_INFINITY),
        );
        Ok(())
    };

    println!("\nmethod                 | budget    | found    | operational value");
    run(
        "uniform + random",
        &rand_fuzz,
        SeedWeighting::Uniform,
        &mut net,
        &mut rng,
    )?;
    run(
        "uniform + fgsm",
        &fgsm,
        SeedWeighting::Uniform,
        &mut net,
        &mut rng,
    )?;
    run(
        "uniform + pgd",
        &pgd,
        SeedWeighting::Uniform,
        &mut net,
        &mut rng,
    )?;
    run(
        "op-seeds + pgd",
        &pgd,
        SeedWeighting::OpTimesMargin,
        &mut net,
        &mut rng,
    )?;
    run(
        "opad (op + natural)",
        &nat_fuzz,
        SeedWeighting::OpTimesMargin,
        &mut net,
        &mut rng,
    )?;

    println!(
        "\nRead `op-mass` as \"how much of real operation is covered by the bugs\n\
         this method found\" — the paper's argument is that the bottom rows\n\
         dominate the top ones on that column, even when raw AE counts tie."
    );

    opad::telemetry::uninstall();
    recorder.flush_summary();
    let s = recorder.summary();
    println!(
        "\ntelemetry: {:.0} ms wall, pgd successes {}, fuzz proposals {} — trace in \
         results/method_comparison_trace.jsonl",
        s.wall_ms,
        s.counter("attack.pgd.success").unwrap_or(0),
        s.counter("attack.fuzz.proposals").unwrap_or(0),
    );
    Ok(())
}
