//! The exp2-style testing loop with the live observability plane
//! attached: a `LiveRecorder` (teeing the usual JSONL trace), the
//! `opad-serve` HTTP server, the `opad-alert` watchdog plane and the
//! `opad-tsdb` history plane — so `/metrics`, `/healthz`, `/runs`,
//! `/alerts`, `/timeseries` and `/query` can be scraped while the
//! rounds are in flight, and a demo alert is driven through its full
//! pending → firing → resolved lifecycle at the end.
//!
//! Run with: `cargo run --release --example serve_monitor`
//!
//! While it runs (and for `OPAD_SERVE_HOLD_SECS` seconds afterwards,
//! default 0):
//!
//! ```text
//! curl http://127.0.0.1:9184/metrics     # Prometheus text exposition
//! curl http://127.0.0.1:9184/healthz     # round + phase + alert + sampler status
//! curl http://127.0.0.1:9184/runs        # finished-run envelopes
//! curl http://127.0.0.1:9184/alerts      # live alert states
//! curl http://127.0.0.1:9184/timeseries  # ring-buffer history index
//! curl 'http://127.0.0.1:9184/query?expr=rate(pipeline.seeds_attacked,10s)'
//! ```
//!
//! Or watch the rings render live in a terminal:
//!
//! ```text
//! cargo run -p opad-obs --bin obsctl -- watch --addr 127.0.0.1:9184
//! ```
//!
//! Set `OPAD_SERVE_ADDR` to change the bind address (e.g.
//! `127.0.0.1:0` for an ephemeral port — the chosen one is printed).

use opad::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read as _, Write as _};
use std::sync::Arc;
use std::time::Duration;

/// `git describe --always --dirty`, or `"unknown"` outside a checkout —
/// the same provenance `obsctl bench` stamps into its reports.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// A one-shot HTTP GET against our own server (std-only, like the
/// server itself) so the example can show what a scraper would see.
fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let mut stream = std::net::TcpStream::connect(addr)?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or(response))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);

    // Observability: the live recorder aggregates contention-free and
    // tees span events to the same JSONL trace the offline obsctl
    // workflows (summary/flame/diff) consume.
    let sink = Arc::new(JsonlSink::create("results/serve_monitor_trace.jsonl")?);
    let recorder = Arc::new(LiveRecorder::with_sink(sink));
    opad::telemetry::install(recorder.clone());

    // The alerting plane: an empty center (the testing loop installs its
    // own default pack on the first round) plus one demo rule we can
    // drive through the full lifecycle by hand at the end. Transitions
    // are appended to an alerts JSONL log as they happen.
    let alert_log = Arc::new(JsonlSink::create("results/serve_monitor_alerts.jsonl")?);
    let (demo_rules, parse_errors) =
        parse_rules("alert demo_hot severity=info for=200ms when gauge demo.temperature > 90");
    assert!(parse_errors.is_empty(), "{parse_errors:?}");
    let center = Arc::new(AlertCenter::with_log(demo_rules, alert_log));
    opad::alert::install(center.clone());
    let watch = AlertWatch::new(recorder.clone(), center.clone())
        .interval(Duration::from_millis(100))
        .spawn();

    // The history plane: a ring-buffer store fed by a background sampler
    // on the alert-watch cadence, plus the process-wide link that lets
    // `run_round` pulse an extra sample at every round boundary.
    let store = Arc::new(TsdbStore::new());
    let sampler = Sampler::new(recorder.clone(), store.clone())
        .interval(Duration::from_millis(100))
        .spawn();
    opad::tsdb::install(Arc::new(TsdbLink {
        recorder: recorder.clone(),
        store: store.clone(),
    }));
    center.attach_series(store.clone());

    let addr = std::env::var("OPAD_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:9184".to_string());
    let server = opad::serve::MetricsServer::new(
        recorder.clone(),
        ServerConfig {
            addr,
            results_dir: "results".into(),
            bench_dir: ".".into(),
            git_commit: git_commit(),
        },
    )
    .alerts(center.clone())
    .timeseries(store.clone())
    .spawn()?;
    println!("live metrics: http://{}/metrics", server.addr());
    println!("health:       http://{}/healthz", server.addr());
    println!("run index:    http://{}/runs", server.addr());
    println!("alerts:       http://{}/alerts", server.addr());
    println!("history:      http://{}/timeseries", server.addr());

    // The detection-efficiency setup: balanced training data, a
    // Zipf-skewed operational profile, and the full Fig. 1 loop.
    let cfg = GaussianClustersConfig {
        separation: 2.0,
        std: 1.0,
        ..Default::default()
    };
    let train = gaussian_clusters(&cfg, 600, &uniform_probs(3), &mut rng)?;
    let field = gaussian_clusters(&cfg, 800, &zipf_probs(3, 1.5), &mut rng)?;
    let mut net = Network::mlp(&[2, 32, 3], Activation::Relu, &mut rng)?;
    Trainer::new(TrainConfig::new(30, 32), Optimizer::adam(0.01)).fit(
        &mut net,
        train.features(),
        train.labels(),
        None,
        &mut rng,
    )?;

    let op = learn_op_gmm(&field, 3, 20, &mut rng)?;
    let partition = CentroidPartition::fit(field.features(), 12, 25, &mut rng)?;
    let target = ReliabilityTarget::new(0.05, 0.90)?;
    let config = LoopConfig {
        seeds_per_round: 30,
        eval_per_round: 300,
        max_rounds: 5,
        ..Default::default()
    };
    let mut testing = TestingLoop::new(net, op, partition, &field, target, config)?;
    let attack = Pgd::new(NormBall::linf(0.4)?, 15, 0.08)?;

    println!("\nround | seeds | AEs | pfd-mean | pfd-90%UB | stop");
    let reports = testing.run(&field, &train, &attack, &mut rng)?;
    for r in &reports {
        println!(
            "{:5} | {:5} | {:3} | {:8.4} | {:9.4} | {}",
            r.round,
            r.seeds_attacked,
            r.aes_found,
            r.pfd_mean,
            r.pfd_upper,
            if r.target_met { "yes" } else { "no" }
        );
    }

    // Drive the demo rule through its lifecycle: publish a breaching
    // gauge, let the watch see it long enough to clear the 200 ms
    // hysteresis budget, then recover. `/healthz` flips to `degraded`
    // while the alert is firing and back to `ok` once it resolves.
    println!("\ndriving demo_hot through pending -> firing -> resolved:");
    recorder.gauge_set("demo.temperature", 97.0);
    std::thread::sleep(Duration::from_millis(600));
    println!(
        "  while firing, /healthz reports: {}",
        http_get(&server.addr().to_string(), "/healthz")?.trim()
    );
    recorder.gauge_set("demo.temperature", 20.0);
    std::thread::sleep(Duration::from_millis(400));
    for t in center.history() {
        println!("  {t}");
    }
    println!(
        "\n/alerts now reports: {}",
        http_get(&server.addr().to_string(), "/alerts")?.trim()
    );

    // The history plane answers windowed questions about the run we just
    // watched — here, the seed-attack throughput over the last 10s.
    println!(
        "/query says:     {}",
        http_get(
            &server.addr().to_string(),
            "/query?expr=rate(pipeline.seeds_attacked,10s)"
        )?
        .trim()
    );

    // Keep serving after the loop so a human (or a scrape job) can look
    // at the final state; CI leaves the default of 0.
    let hold: u64 = std::env::var("OPAD_SERVE_HOLD_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    if hold > 0 {
        println!("\nholding the server for {hold}s (OPAD_SERVE_HOLD_SECS)…");
        std::thread::sleep(std::time::Duration::from_secs(hold));
    }

    watch.shutdown();
    sampler.shutdown();
    opad::tsdb::uninstall();
    opad::alert::uninstall();
    opad::telemetry::uninstall();
    recorder.flush_summary();
    server.shutdown();
    let s = recorder.summary();
    println!(
        "\ntelemetry: {:.0} ms wall, {} events — trace in results/serve_monitor_trace.jsonl, \
         alert transitions in results/serve_monitor_alerts.jsonl",
        s.wall_ms, s.events
    );
    println!(
        "flamegraph: cargo run -p opad-obs --bin obsctl -- flame results/serve_monitor_trace.jsonl"
    );
    println!("replay:     cargo run -p opad-obs --bin obsctl -- alerts check rules/default.alerts");
    Ok(())
}
