//! The exp2-style testing loop with the live observability plane
//! attached: a `LiveRecorder` (teeing the usual JSONL trace) plus the
//! `opad-serve` HTTP server, so `/metrics`, `/healthz` and `/runs` can
//! be scraped while the rounds are in flight.
//!
//! Run with: `cargo run --release --example serve_monitor`
//!
//! While it runs (and for `OPAD_SERVE_HOLD_SECS` seconds afterwards,
//! default 0):
//!
//! ```text
//! curl http://127.0.0.1:9184/metrics   # Prometheus text exposition
//! curl http://127.0.0.1:9184/healthz   # current round + phase
//! curl http://127.0.0.1:9184/runs      # finished-run envelopes
//! ```
//!
//! Set `OPAD_SERVE_ADDR` to change the bind address (e.g.
//! `127.0.0.1:0` for an ephemeral port — the chosen one is printed).

use opad::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);

    // Observability: the live recorder aggregates contention-free and
    // tees span events to the same JSONL trace the offline obsctl
    // workflows (summary/flame/diff) consume.
    let sink = Arc::new(JsonlSink::create("results/serve_monitor_trace.jsonl")?);
    let recorder = Arc::new(LiveRecorder::with_sink(sink));
    opad::telemetry::install(recorder.clone());

    let addr = std::env::var("OPAD_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:9184".to_string());
    let server = opad::serve::MetricsServer::new(
        recorder.clone(),
        ServerConfig {
            addr,
            results_dir: "results".into(),
            bench_dir: ".".into(),
        },
    )
    .spawn()?;
    println!("live metrics: http://{}/metrics", server.addr());
    println!("health:       http://{}/healthz", server.addr());
    println!("run index:    http://{}/runs", server.addr());

    // The detection-efficiency setup: balanced training data, a
    // Zipf-skewed operational profile, and the full Fig. 1 loop.
    let cfg = GaussianClustersConfig {
        separation: 2.0,
        std: 1.0,
        ..Default::default()
    };
    let train = gaussian_clusters(&cfg, 600, &uniform_probs(3), &mut rng)?;
    let field = gaussian_clusters(&cfg, 800, &zipf_probs(3, 1.5), &mut rng)?;
    let mut net = Network::mlp(&[2, 32, 3], Activation::Relu, &mut rng)?;
    Trainer::new(TrainConfig::new(30, 32), Optimizer::adam(0.01)).fit(
        &mut net,
        train.features(),
        train.labels(),
        None,
        &mut rng,
    )?;

    let op = learn_op_gmm(&field, 3, 20, &mut rng)?;
    let partition = CentroidPartition::fit(field.features(), 12, 25, &mut rng)?;
    let target = ReliabilityTarget::new(0.05, 0.90)?;
    let config = LoopConfig {
        seeds_per_round: 30,
        eval_per_round: 300,
        max_rounds: 5,
        ..Default::default()
    };
    let mut testing = TestingLoop::new(net, op, partition, &field, target, config)?;
    let attack = Pgd::new(NormBall::linf(0.4)?, 15, 0.08)?;

    println!("\nround | seeds | AEs | pfd-mean | pfd-90%UB | stop");
    let reports = testing.run(&field, &train, &attack, &mut rng)?;
    for r in &reports {
        println!(
            "{:5} | {:5} | {:3} | {:8.4} | {:9.4} | {}",
            r.round,
            r.seeds_attacked,
            r.aes_found,
            r.pfd_mean,
            r.pfd_upper,
            if r.target_met { "yes" } else { "no" }
        );
    }

    // Keep serving after the loop so a human (or a scrape job) can look
    // at the final state; CI leaves the default of 0.
    let hold: u64 = std::env::var("OPAD_SERVE_HOLD_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    if hold > 0 {
        println!("\nholding the server for {hold}s (OPAD_SERVE_HOLD_SECS)…");
        std::thread::sleep(std::time::Duration::from_secs(hold));
    }

    opad::telemetry::uninstall();
    recorder.flush_summary();
    server.shutdown();
    let s = recorder.summary();
    println!(
        "\ntelemetry: {:.0} ms wall, {} events — trace in results/serve_monitor_trace.jsonl",
        s.wall_ms, s.events
    );
    println!(
        "flamegraph: cargo run -p opad-obs --bin obsctl -- flame results/serve_monitor_trace.jsonl"
    );
    Ok(())
}
