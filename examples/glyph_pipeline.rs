//! The full Figure-1 loop on the vision-like glyph dataset: a conv-net
//! classifier, a skewed operational profile, and iterative
//! sample → fuzz → retrain → assess rounds until the reliability target
//! is met (or the round budget runs out).
//!
//! Run with: `cargo run --release --example glyph_pipeline`

use opad::nn::{ActivationLayer, Conv2d, Dense, Layer, MaxPool2d};
use opad::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(23);

    // Glyph raster images: 12×12 pixels, 6 classes.
    let gcfg = GlyphConfig {
        num_classes: 6,
        ..Default::default()
    };
    let train = glyphs(&gcfg, 900, &uniform_probs(6), &mut rng)?;
    // Operation sees mostly the first two glyph types.
    let op_probs = zipf_probs(6, 2.0);
    let field = glyphs(&gcfg, 900, &op_probs, &mut rng)?;
    println!("operational class skew: {op_probs:?}");

    // A small conv net: 1×12×12 → conv(4, k3) → relu → pool2 → dense → 6.
    let mut net = Network::new(vec![
        Layer::Conv2d(Conv2d::new(1, 12, 12, 4, 3, &mut rng)?),
        Layer::Activation(ActivationLayer::new(Activation::Relu)),
        Layer::MaxPool2d(MaxPool2d::new(4, 10, 10, 2)?),
        Layer::Dense(Dense::new(4 * 5 * 5, 6, &mut rng)),
    ])?;
    let mut trainer = Trainer::new(TrainConfig::new(12, 32), Optimizer::adam(0.005));
    trainer.fit(&mut net, train.features(), train.labels(), None, &mut rng)?;
    println!(
        "initial accuracy — train: {:.3}, operational: {:.3}",
        net.accuracy(train.features(), train.labels())?,
        net.accuracy(field.features(), field.labels())?,
    );

    // Learn the OP (KDE works well in pixel space) and build the loop.
    let op = learn_op_kde(&field)?;
    let partition = CentroidPartition::fit(field.features(), 12, 15, &mut rng)?;
    let target = ReliabilityTarget::new(0.05, 0.90)?;
    let config = LoopConfig {
        seeds_per_round: 25,
        eval_per_round: 250,
        weighting: SeedWeighting::OpTimesMargin,
        priority_feedback: true,
        retrain: RetrainConfig {
            epochs: 6,
            learning_rate: 0.02,
            ..Default::default()
        },
        ae_evidence: true,
        max_rounds: 4,
        mc_samples: 1500,
    };
    let mut testing = TestingLoop::new(net, op, partition, &field, target, config)?;

    // Pixel-space attack: small L∞ ball, clipped to valid pixel range.
    let attack = Pgd::new(NormBall::linf(0.12)?, 12, 0.03)?.with_clip(0.0, 1.0)?;

    println!("\nround | seeds | AEs | op-mass | pfd-mean | pfd-95%UB | op-acc | stop");
    let reports = testing.run(&field, &train, &attack, &mut rng)?;
    for r in &reports {
        println!(
            "{:5} | {:5} | {:3} | {:7.3} | {:8.4} | {:9.4} | {:6.3} | {}",
            r.round,
            r.seeds_attacked,
            r.aes_found,
            r.op_mass_detected,
            r.pfd_mean,
            r.pfd_upper,
            r.op_accuracy,
            if r.target_met { "yes" } else { "no" }
        );
    }
    println!(
        "\ntotal: {} test cases, {} operational AEs, target met: {}",
        testing.timeline().total_tests(),
        testing.corpus().len(),
        testing.timeline().target_met()
    );
    if let Some(imp) = testing.timeline().improvement() {
        println!("pfd improvement across rounds: {:.1}%", imp * 100.0);
    }
    Ok(())
}
