//! A deployment-style robustness report: train a glyph classifier, save
//! it, reload it, and grade it across the environmental-corruption
//! severity ladder under both the balanced lab distribution and the
//! skewed operational profile — the difference between the last two
//! columns is the number the paper says testing should be driven by.
//!
//! Run with: `cargo run --release --example robustness_report`

use opad::data::{severity_ladder, Corruption};
use opad::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(31);
    let gcfg = GlyphConfig {
        num_classes: 6,
        ..Default::default()
    };
    let train = glyphs(&gcfg, 900, &uniform_probs(6), &mut rng)?;
    let op_probs = zipf_probs(6, 1.5);

    let mut net = Network::mlp(&[gcfg.feature_dim(), 64, 6], Activation::Relu, &mut rng)?;
    Trainer::new(
        TrainConfig::new(15, 32).lr_decay(0.9),
        Optimizer::adam(0.005),
    )
    .fit(&mut net, train.features(), train.labels(), None, &mut rng)?;

    // Persist and reload — what a deployment pipeline would do.
    let artefact = net.to_json()?;
    println!(
        "model artefact: {} bytes ({} parameters)",
        artefact.len(),
        net.param_count()
    );
    let mut deployed = Network::from_json(&artefact)?;

    println!("\nseverity | corruptions                      | lab acc | operational acc | gap");
    for (level, corruptions) in severity_ladder(Some(gcfg.size)).into_iter().enumerate() {
        // Fresh evaluation data per level, lab-balanced and OP-skewed.
        let lab = glyphs(&gcfg, 600, &uniform_probs(6), &mut rng)?;
        let field = glyphs(&gcfg, 600, &op_probs, &mut rng)?;
        let corrupt =
            |mut ds: Dataset, rng: &mut StdRng| -> Result<Dataset, opad::data::DataError> {
                for c in &corruptions {
                    ds = c.apply(&ds, rng)?;
                }
                Ok(ds)
            };
        let lab = corrupt(lab, &mut rng)?;
        let field = corrupt(field, &mut rng)?;
        let lab_acc = deployed.accuracy(lab.features(), lab.labels())?;
        let op_acc = deployed.accuracy(field.features(), field.labels())?;
        let names: Vec<&str> = corruptions.iter().map(Corruption::name).collect();
        println!(
            "{level:8} | {:<32} | {lab_acc:7.3} | {op_acc:15.3} | {:+.3}",
            names.join("+"),
            op_acc - lab_acc
        );
    }
    println!(
        "\nThe operational column is what users experience; once it diverges\n\
         from the lab column, OP-blind test results overstate reliability and\n\
         the opad loop (see `glyph_pipeline`) is the corrective."
    );
    Ok(())
}
