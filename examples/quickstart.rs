//! Quickstart: train a classifier on balanced data, learn the skewed
//! operational profile from field data, and detect *operational*
//! adversarial examples around OP-weighted seeds.
//!
//! Run with: `cargo run --release --example quickstart`

use opad::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);

    // 0. Observability: stream span/timing events to a JSONL trace. Every
    //    instrumented call below (training epochs, reliability updates,
    //    matmuls) lands in this file; the recorder aggregates the rest.
    let recorder = Arc::new(MetricsRecorder::with_sink(Arc::new(JsonlSink::create(
        "results/quickstart_trace.jsonl",
    )?)));
    opad::telemetry::install(recorder.clone());

    // 1. Data: training is collected *balanced*; operation is Zipf-skewed
    //    toward class 0 — the mismatch at the heart of the paper.
    let cfg = GaussianClustersConfig {
        separation: 2.0,
        std: 1.0,
        ..Default::default()
    };
    let train = gaussian_clusters(&cfg, 600, &uniform_probs(3), &mut rng)?;
    let field = gaussian_clusters(&cfg, 800, &zipf_probs(3, 1.5), &mut rng)?;
    println!("train class distribution: {:?}", train.class_distribution());
    println!("field class distribution: {:?}", field.class_distribution());

    // 2. Train the model under test.
    let mut net = Network::mlp(&[2, 32, 3], Activation::Relu, &mut rng)?;
    let mut trainer = Trainer::new(TrainConfig::new(30, 32), Optimizer::adam(0.01));
    trainer.fit(&mut net, train.features(), train.labels(), None, &mut rng)?;
    println!(
        "train accuracy: {:.3}, field (operational) accuracy: {:.3}",
        net.accuracy(train.features(), train.labels())?,
        net.accuracy(field.features(), field.labels())?,
    );

    // 3. RQ1 — learn the operational profile from the field data.
    let op = learn_op_gmm(&field, 3, 20, &mut rng)?;
    println!("learned OP class probabilities: {:?}", op.class_probs());

    // 4. RQ2 — weight-based seed selection: OP density × decision margin.
    let sampler = SeedSampler::new(SeedWeighting::OpTimesMargin);
    let weights = sampler.weights(&mut net, &field, Some(op.density()))?;
    let seeds = sampler.sample(&weights, 40, &mut rng)?;

    // 5. RQ3 — naturalness-guided fuzzing around each seed.
    let naturalness = DensityNaturalness::new(op.density().clone());
    let ball = NormBall::linf(0.4)?;
    let fuzz = NaturalFuzz::new(&naturalness, ball, 25, 0.08, 1.0)?.with_restarts(2);
    let partition = CentroidPartition::fit(field.features(), 12, 25, &mut rng)?;
    let cell_op = partition.cell_distribution(field.features(), 0.5)?;

    let mut corpus = AeCorpus::new();
    for &i in &seeds {
        let (seed, label) = field.sample(i)?;
        let outcome = fuzz.run(&mut net, &seed, label, &mut rng)?;
        if let Some(ae) = classify_outcome(i, &seed, label, &outcome, op.density(), &partition)? {
            corpus.push(ae);
        }
    }
    println!(
        "detected {} operational AEs across {} distinct OP cells",
        corpus.len(),
        corpus.distinct_cells().len()
    );
    println!(
        "OP mass of buggy cells: {:.3}; mean AE log-density: {:.2}",
        corpus.op_mass_detected(&cell_op)?,
        corpus.mean_op_log_density().unwrap_or(f64::NEG_INFINITY)
    );

    // 6. RQ4 — OP-aware retraining on the detected AEs…
    let before = net.accuracy(field.features(), field.labels())?;
    retrain_with_aes(
        &mut net,
        &train,
        &corpus,
        Some(op.density()),
        &RetrainConfig::default(),
        &mut rng,
    )?;
    let after = net.accuracy(field.features(), field.labels())?;
    println!("operational accuracy: {before:.3} → {after:.3} after retraining");

    // 7. RQ5 — a reliability claim on the retrained model.
    let mut model = CellReliabilityModel::new(cell_op)?;
    let d = field.feature_dim();
    for i in 0..field.len() {
        let (x, label) = field.sample(i)?;
        let cell = partition.cell_of(&field.features().as_slice()[i * d..(i + 1) * d])?;
        let pred = net.predict_labels(&x.reshape(&[1, d])?)?[0];
        model.observe(cell, pred != label)?;
    }
    let upper = model.pfd_upper_bound(0.95, 4000, &mut rng)?;
    println!(
        "posterior pfd: {:.4} (95% upper bound {:.4})",
        model.pfd_mean(),
        upper
    );

    // 8. Flush the trace and print what the run cost.
    opad::telemetry::uninstall();
    recorder.flush_summary();
    let s = recorder.summary();
    println!(
        "telemetry: {:.0} ms wall, {} events — trace in results/quickstart_trace.jsonl",
        s.wall_ms, s.events
    );
    Ok(())
}
